#include "server/server.h"

#include <chrono>
#include <filesystem>
#include <set>
#include <utility>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "storage/io.h"

namespace graphlog {

using storage::Database;
using storage::Relation;
using storage::Tuple;

namespace {

/// True when `ver` still describes the live relation byte-for-byte: same
/// identity (uid), same committed data stamp, same row count. DropIndexes
/// and index builds don't move any of the three, so retained versions
/// survive physical-only churn.
bool SameVersion(const Relation& live, const Relation& ver) {
  return live.uid() == ver.uid() &&
         live.data_generation() == ver.data_generation() &&
         live.size() == ver.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// Server

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), db_(&owned_db_), attached_(false) {
  std::lock_guard<std::mutex> lock(mu_);
  RebuildHeadLocked();  // epoch-0 snapshot of the empty database
}

Server::Server(storage::Database* db, ServerOptions opts)
    : opts_(std::move(opts)), db_(db), attached_(true) {}

Server::~Server() = default;  // out-of-line for the durability::Wal member

Result<std::unique_ptr<Server>> Server::Open(const std::string& dir,
                                             ServerOptions opts,
                                             DurabilityOptions dur) {
  const auto started = std::chrono::steady_clock::now();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("failed creating durable directory '" + dir +
                            "': " + ec.message());
  }
  const std::string ckpt_path = dir + "/checkpoint.db";
  const std::string wal_path = dir + "/wal.log";

  std::unique_ptr<Server> server(new Server(std::move(opts)));
  server->dir_ = dir;

  // 1. Newest valid checkpoint (atomic rename means there is at most
  //    one; a leftover checkpoint.db.tmp from an aborted write is dead).
  GRAPHLOG_ASSIGN_OR_RETURN(durability::CheckpointData ckpt,
                            durability::ReadCheckpoint(ckpt_path));
  uint64_t epoch = 0;
  if (ckpt.found) {
    server->owned_db_ = std::move(ckpt.db);
    epoch = ckpt.epoch;
  }

  // 2. WAL tail replay through the same machinery commits use. Records
  //    at or below the checkpoint epoch are already inside it (a crash
  //    between checkpoint rename and WAL truncation leaves them behind,
  //    harmlessly).
  GRAPHLOG_ASSIGN_OR_RETURN(durability::WalScan scan,
                            durability::ScanWal(wal_path));
  uint64_t replayed = 0;
  uint64_t replayed_facts = 0;
  for (durability::WalRecord& rec : scan.records) {
    if (rec.epoch <= epoch) continue;
    Result<size_t> r =
        ApplyBatchTo(rec.batch, &server->owned_db_, nullptr, nullptr,
                     &rec.files);
    if (!r.ok()) {
      // A checksum-valid record that will not apply is corruption the
      // CRC missed (or cross-version drift); refuse the whole log
      // rather than recover a state no committed prefix ever had.
      return Status::CorruptedLog(
          "recovery: WAL record for epoch " + std::to_string(rec.epoch) +
          " does not replay: " + r.status().ToString());
    }
    replayed_facts += *r;
    ++replayed;
    epoch = rec.epoch;
  }
  uint64_t torn_bytes = 0;
  if (scan.torn) {
    torn_bytes = scan.file_bytes - scan.valid_prefix_bytes;
    GRAPHLOG_RETURN_NOT_OK(
        durability::TruncateFile(wal_path, scan.valid_prefix_bytes));
  }

  // 3. Publish the recovered state as the head snapshot. The prev ==
  //    nullptr path of RebuildHeadLocked keeps epoch_ as stored, so the
  //    recovered epoch numbering continues exactly where it stopped.
  server->epoch_.store(epoch, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(server->mu_);
    {
      std::lock_guard<std::mutex> head_lock(server->head_mu_);
      server->head_ = nullptr;
    }
    server->RebuildHeadLocked();
  }

  // 4. Open the appender at the (repaired) tail.
  durability::WalOptions wopts;
  wopts.fsync = dur.fsync;
  wopts.group_window_ms = dur.group_window_ms;
  wopts.metrics = server->opts_.metrics;
  wopts.faults = server->opts_.faults;
  GRAPHLOG_ASSIGN_OR_RETURN(server->wal_,
                            durability::Wal::Open(wal_path, wopts));

  if (server->opts_.metrics != nullptr) {
    obs::MetricsRegistry* m = server->opts_.metrics;
    m->counter("recovery.runs")->Increment();
    m->counter("recovery.replayed_records")
        ->Add(static_cast<int64_t>(replayed));
    m->counter("recovery.replayed_facts")
        ->Add(static_cast<int64_t>(replayed_facts));
    m->counter("recovery.torn_tail_bytes")
        ->Add(static_cast<int64_t>(torn_bytes));
    m->gauge("recovery.epoch")->Set(static_cast<int64_t>(epoch));
    m->histogram("recovery.duration_ns")
        ->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - started)
                      .count());
  }
  return server;
}

Status Server::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint() requires a durable server (Server::Open)");
  }
  // Under the commit lock: the serialized state and the epoch stamped on
  // it cannot drift apart, and no commit can append between the
  // checkpoint and the WAL truncation behind it.
  std::lock_guard<std::mutex> lock(mu_);
  GRAPHLOG_RETURN_NOT_OK(durability::WriteCheckpoint(
      dir_ + "/checkpoint.db", *db_, epoch(), opts_.faults, opts_.metrics));
  return wal_->Reset();
}

std::shared_ptr<const Snapshot> Server::head() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return head_;
}

Result<std::unique_ptr<Session>> Server::OpenSession(SessionOptions opts) {
  const size_t before = open_sessions_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.max_sessions != 0 && before >= opts_.max_sessions) {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
    return Status::BudgetExceeded(
        "session admission: " + std::to_string(opts_.max_sessions) +
        " sessions already open");
  }
  std::string name = opts.name;
  if (name.empty()) {
    name = "s" + std::to_string(
                     session_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  std::unique_ptr<Session> s(new Session(this, std::move(opts), std::move(name)));
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("server.sessions_opened")->Increment();
    opts_.metrics->gauge("server.sessions")
        ->Set(static_cast<int64_t>(open_sessions()));
  }
  return s;
}

Result<size_t> Server::Apply(const WriteBatch& batch,
                             const gov::GovernorContext* governor) {
  return ApplyInternal(batch, governor, nullptr, nullptr, nullptr);
}

void Server::ReleaseSession() {
  const size_t now =
      open_sessions_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (opts_.metrics != nullptr) {
    opts_.metrics->gauge("server.sessions")->Set(static_cast<int64_t>(now));
  }
}

Result<size_t> Server::ApplyInternal(const WriteBatch& batch,
                                     const gov::GovernorContext* governor,
                                     uint64_t* base_epoch,
                                     uint64_t* committed_epoch,
                                     std::vector<std::string>* capture_files) {
  std::lock_guard<std::mutex> lock(mu_);
  if (base_epoch != nullptr) *base_epoch = epoch();
  // A batch without its own governor still honors the server-armed fault
  // injector (deterministic io.load failures in tests and the shell).
  gov::GovernorContext local;
  if (governor == nullptr && opts_.faults != nullptr) {
    local.faults = opts_.faults;
    governor = &local;
  }
  // kLoadFile contents are captured unconditionally: every replay
  // consumer — session fast-forward and the WAL — applies the exact
  // bytes this commit read, never a path re-read from disk.
  std::vector<std::string> files;
  BatchUndo undo;
  Result<size_t> applied =
      ApplyBatchTo(batch, db_, governor, &files, nullptr, &undo);
  if (applied.ok() && wal_ != nullptr) {
    // Durable commit: the record must reach the log (and stable storage,
    // per the fsync policy) BEFORE the epoch publishes. A logging
    // failure rolls the in-memory apply back — a commit that is not
    // durable must not be observable.
    Status logged = wal_->Append(epoch() + 1, batch, files);
    if (!logged.ok()) {
      UndoBatch(db_, std::move(undo));
      applied = logged;
    }
  }
  if (opts_.metrics != nullptr) {
    if (applied.ok()) {
      opts_.metrics->counter("server.commits")->Increment();
      opts_.metrics->counter("server.facts_committed")->Add(*applied);
    } else {
      opts_.metrics->counter("server.aborted_commits")->Increment();
    }
  }
  GRAPHLOG_RETURN_NOT_OK(applied.status());
  if (capture_files != nullptr) *capture_files = std::move(files);
  if (attached_) {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  } else {
    RebuildHeadLocked();
  }
  if (committed_epoch != nullptr) *committed_epoch = epoch();
  return applied;
}

void Server::Publish() {
  if (attached_) return;
  std::lock_guard<std::mutex> lock(mu_);
  RebuildHeadLocked();
}

void Server::RebuildHeadLocked() {
  std::shared_ptr<const Snapshot> prev;
  {
    std::lock_guard<std::mutex> lock(head_mu_);
    prev = head_;
  }
  auto next = std::make_shared<Snapshot>();
  // First publish keeps epoch 0 (the empty-database snapshot of the
  // constructor); every later rebuild is one commit -> one epoch.
  next->epoch = prev == nullptr
                    ? epoch_.load(std::memory_order_relaxed)
                    : epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const SymbolTable& syms = db_->symbols();
  // The symbol table is grow-only, so equal size means identical content
  // and the previous snapshot's table can be shared.
  if (prev != nullptr && prev->symbols->size() == syms.size()) {
    next->symbols = prev->symbols;
  } else {
    next->symbols = std::make_shared<const SymbolTable>(syms.Clone());
  }
  size_t copied = 0;
  for (const auto& [sym, rel] : db_->relations()) {
    std::shared_ptr<const Relation> ver;
    if (prev != nullptr) {
      auto it = prev->relations.find(sym);
      if (it != prev->relations.end() && SameVersion(rel, *it->second)) {
        ver = it->second;  // retained: untouched since the last publish
      }
    }
    if (ver == nullptr) {
      auto copy = std::make_shared<Relation>(rel);
      // Versions are logical contents; indexes rebuild lazily wherever
      // the version is materialized (DropIndexes bumps only the
      // structural generation, never the data stamp).
      copy->DropIndexes();
      ver = std::move(copy);
      ++copied;
    }
    next->relations.emplace(sym, std::move(ver));
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->gauge("server.epoch")
        ->Set(static_cast<int64_t>(next->epoch));
    opts_.metrics->gauge("server.snapshot_relations")
        ->Set(static_cast<int64_t>(next->relations.size()));
    opts_.metrics->counter("server.versions_copied")->Add(copied);
  }
  std::lock_guard<std::mutex> lock(head_mu_);
  head_ = std::move(next);
}

Result<size_t> Server::ApplyBatchTo(
    const WriteBatch& batch, Database* db,
    const gov::GovernorContext* governor,
    std::vector<std::string>* capture_files,
    const std::vector<std::string>* replay_files,
    BatchUndo* undo_out) {
  // Pre-state for rollback: every relation's size and data stamp, plus
  // pre-batch copies of anything a Clear op wipes (truncation cannot
  // restore cleared rows).
  BatchUndo undo;
  std::map<Symbol, std::pair<size_t, uint64_t>>& pre_state = undo.pre_state;
  for (const auto& [sym, rel] : db->relations()) {
    pre_state.emplace(sym, std::make_pair(rel.size(), rel.data_generation()));
  }
  std::map<Symbol, Relation>& cleared = undo.cleared;
  size_t facts = 0;
  size_t file_idx = 0;
  Status st = Status::OK();
  for (const WriteBatch::Op& op : batch.ops_) {
    switch (op.kind) {
      case WriteBatch::Op::kFacts: {
        Result<size_t> r = storage::LoadFacts(op.text, db, governor);
        if (r.ok()) {
          facts += *r;
        } else {
          st = r.status();
        }
        break;
      }
      case WriteBatch::Op::kLoadFile: {
        Result<size_t> r = [&]() -> Result<size_t> {
          if (replay_files != nullptr) {
            // Replay the exact bytes the committed apply read: re-reading
            // the file here could pick up concurrent on-disk edits and
            // diverge from the published version under a matching stamp.
            if (file_idx >= replay_files->size()) {
              return Status::Internal("replay of '" + op.text +
                                      "' has no captured contents");
            }
            return storage::LoadFacts((*replay_files)[file_idx], db,
                                      governor);
          }
          // Live load always reads the raw contents back out — replay,
          // wherever it happens (session fast-forward, WAL recovery),
          // is from these captured bytes; there is no path-based replay.
          std::string contents;
          Result<size_t> loaded =
              storage::LoadFactsFile(op.text, db, governor, &contents);
          if (capture_files != nullptr) {
            capture_files->push_back(std::move(contents));
          }
          return loaded;
        }();
        ++file_idx;
        if (r.ok()) {
          facts += *r;
        } else {
          st = r.status();
        }
        break;
      }
      case WriteBatch::Op::kInsert: {
        Tuple t;
        t.reserve(op.args.size());
        for (const std::string& a : op.args) {
          t.push_back(Value::Sym(db->Intern(a)));
        }
        st = db->AddFact(op.text, std::move(t));
        if (st.ok()) ++facts;
        break;
      }
      case WriteBatch::Op::kClear: {
        const Symbol s = db->symbols().Lookup(op.text);
        Relation* rel = s == kNoSymbol ? nullptr : db->FindMutable(s);
        if (rel == nullptr) {
          st = Status::NotFound("cannot clear unknown relation '" + op.text +
                                "'");
          break;
        }
        if (pre_state.count(s) != 0 && cleared.count(s) == 0) {
          // Save the true pre-batch contents once. Earlier ops of this
          // same batch may already have appended rows and bumped the
          // stamp; rows are append-only, so trimming the copy back to
          // its pre-batch size and stamp undoes them — rollback must
          // never reinstate in-batch inserts.
          const auto& pre = pre_state.find(s)->second;
          Relation saved(*rel);
          if (saved.size() > pre.first) saved.TruncateTo(pre.first);
          saved.RestoreDataGeneration(pre.second);
          cleared.emplace(s, std::move(saved));
        }
        rel->Clear();
        break;
      }
    }
    if (!st.ok()) break;
  }
  if (st.ok()) {
    if (undo_out != nullptr) *undo_out = std::move(undo);
    return facts;
  }
  UndoBatch(db, std::move(undo));
  return st;
}

void Server::UndoBatch(storage::Database* db, BatchUndo&& undo) {
  // All-or-nothing: undo everything the batch did, in an order that
  // composes — drop created relations, shrink grown ones (restoring the
  // pre-batch data stamp the ops bumped), then reinstate cleared ones
  // wholesale (which also fixes clear-then-grow sequences).
  std::vector<Symbol> created;
  for (const auto& [sym, rel] : db->relations()) {
    (void)rel;
    if (undo.pre_state.count(sym) == 0) created.push_back(sym);
  }
  for (Symbol s : created) db->Remove(s);
  for (const auto& [sym, pre] : undo.pre_state) {
    Relation* rel = db->FindMutable(sym);
    if (rel == nullptr) continue;
    if (rel->size() > pre.first) rel->TruncateTo(pre.first);
    rel->RestoreDataGeneration(pre.second);
  }
  for (auto& [sym, saved] : undo.cleared) {
    db->relations().insert_or_assign(sym, std::move(saved));
  }
}

// ---------------------------------------------------------------------------
// Session

Session::Session(Server* server, SessionOptions opts, std::string name)
    : server_(server),
      opts_(std::move(opts)),
      name_(std::move(name)),
      attached_(server->attached()),
      db_(&owned_db_) {
  if (attached_) {
    db_ = server_->db_;
  } else {
    Materialize(server_->head());
  }
}

Session::~Session() { server_->ReleaseSession(); }

void Session::Materialize(const std::shared_ptr<const Snapshot>& snap) {
  // A fresh Database per materialization: its new uid fences this
  // session's result-cache entries off from every other database, and
  // session-local symbol ids can never leak into them.
  owned_db_ = Database();
  owned_db_.symbols() = snap->symbols->Clone();
  for (const auto& [sym, ver] : snap->relations) {
    // Copies keep the server-issued uid and data stamp, so stamp-keyed
    // caches validate within the session exactly as on the server.
    owned_db_.relations().emplace(sym, *ver);
  }
  db_ = &owned_db_;
  base_symbols_ = snap->symbols->size();
  epoch_ = snap->epoch;
}

Status Session::Refresh() {
  if (attached_) return Status::OK();
  std::shared_ptr<const Snapshot> snap = server_->head();
  if (snap->epoch == epoch_) return Status::OK();
  ++stats_.refreshes;
  if (server_->metrics() != nullptr) {
    server_->metrics()->counter("session." + name_ + ".refreshes")
        ->Increment();
  }
  if (snap->symbols->size() != base_symbols_) {
    // The server interned new symbols since this session materialized;
    // their ids may collide with session-local ones, so the private
    // database rebuilds from scratch (session materializations drop).
    Materialize(snap);
    return Status::OK();
  }
  // In-place fast path: the symbol space is unchanged, so EDB versions
  // swap in directly and session-local relations (materialized IDB
  // results) survive — grow-only semantics, same as re-running against a
  // single long-lived Database.
  for (const auto& [sym, ver] : snap->relations) {
    auto it = db_->relations().find(sym);
    if (it == db_->relations().end()) {
      db_->relations().emplace(sym, *ver);
    } else if (!SameVersion(it->second, *ver)) {
      db_->relations().insert_or_assign(sym, *ver);
    }
  }
  // Server-prefix relations the new head no longer carries were removed
  // server-side; drop them so this session stops serving deleted EDBs.
  // Session-local relations (symbol ids >= base_symbols_) survive.
  for (auto it = db_->relations().begin(); it != db_->relations().end();) {
    if (it->first < base_symbols_ &&
        snap->relations.count(it->first) == 0) {
      it = db_->relations().erase(it);
    } else {
      ++it;
    }
  }
  epoch_ = snap->epoch;
  return Status::OK();
}

Result<size_t> Session::Apply(const WriteBatch& batch,
                              const gov::GovernorContext* governor) {
  uint64_t base = 0;
  uint64_t committed = 0;
  // File contents the committed apply reads are captured so the replay
  // below applies the exact same bytes — never a file that changed on
  // disk between the commit and the replay (the commit path captures
  // unconditionally; this just asks for the copies).
  std::vector<std::string> loaded_files;
  GRAPHLOG_ASSIGN_OR_RETURN(
      size_t facts,
      server_->ApplyInternal(batch, governor, &base, &committed,
                             &loaded_files));
  ++stats_.writes;
  if (attached_) return facts;
  if (epoch_ == base) {
    // Fast-forward: no other writer intervened, so replaying the same
    // committed ops onto the private database reproduces the published
    // contents in this session's symbol space — stamps advance by the
    // same deterministic arithmetic, session materializations survive.
    // A replay failure (e.g. an arity clash with a session-local
    // relation shadowing a new server one) falls back to a full rebuild.
    Result<size_t> replay =
        Server::ApplyBatchTo(batch, db_, nullptr, nullptr, &loaded_files);
    if (replay.ok()) {
      epoch_ = committed;
      return facts;
    }
  }
  GRAPHLOG_RETURN_NOT_OK(Refresh());
  return facts;
}

Result<QueryResponse> Session::Run(QueryRequest req) {
  QueryOptions& o = req.options;
  const QueryOptions& d = opts_.defaults;
  // Fill unset request options from the session defaults, then the
  // server. Pointers fill when null; toggles OR in; num_threads applies
  // when the request kept the serial default.
  if (o.observability.metrics == nullptr) {
    o.observability.metrics = d.observability.metrics != nullptr
                                  ? d.observability.metrics
                                  : server_->metrics();
  }
  if (o.observability.slow_query_log == nullptr &&
      d.observability.slow_query_log != nullptr) {
    o.observability.slow_query_log = d.observability.slow_query_log;
    o.observability.slow_query_threshold_ns =
        d.observability.slow_query_threshold_ns;
  }
  if (o.cache.result_cache == nullptr) {
    o.cache.result_cache = d.cache.result_cache != nullptr
                               ? d.cache.result_cache
                               : server_->result_cache();
  }
  if (o.cache.views == nullptr) o.cache.views = d.cache.views;
  if (d.eval.columnar) o.eval.columnar = true;
  if (d.translation.specialize_bound_closures) {
    o.translation.specialize_bound_closures = true;
  }
  if (o.eval.num_threads == 1 && d.eval.num_threads != 1) {
    o.eval.num_threads = d.eval.num_threads;
  }
  if (o.eval.columnar && o.eval.csr_cache == nullptr) {
    o.eval.csr_cache = &csr_cache_;
  }
  // Slow-query attribution: which session ran the query, under which
  // server epoch. Attached sessions (and graphlog::Run, which is one)
  // run raw against the caller's database — their records stay
  // unattributed, matching the pre-server behavior.
  if (!attached_) {
    if (o.observability.session.empty()) {
      o.observability.session = name_;
    }
    if (o.observability.server_epoch == 0) {
      o.observability.server_epoch = epoch();
    }
  }
  // A request without its own governor runs under the session's limits
  // (and its cancellation token) when any are configured.
  gov::GovernorContext session_governor;
  if (o.eval.governor == nullptr &&
      (opts_.budget.any() || opts_.deadline_ms != 0)) {
    session_governor.token = cancel_;
    session_governor.budget = opts_.budget;
    if (opts_.deadline_ms != 0) {
      session_governor.deadline = gov::Deadline::AfterMillis(opts_.deadline_ms);
    }
    o.eval.governor = &session_governor;
  }

  const auto started = std::chrono::steady_clock::now();
  Result<QueryResponse> resp = detail::RunPipeline(req, db_);
  const int64_t duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  ++stats_.queries;
  if (!resp.ok()) ++stats_.errors;
  if (resp.ok() && resp->cache_hit) ++stats_.cache_hits;
  if (obs::MetricsRegistry* m = o.observability.metrics; m != nullptr) {
    m->counter("server.queries")->Increment();
    const std::string p = "session." + name_ + ".";
    m->counter(p + "queries")->Increment();
    if (!resp.ok()) m->counter(p + "errors")->Increment();
    if (resp.ok() && resp->cache_hit) m->counter(p + "cache_hits")->Increment();
    if (resp.ok() && resp->truncated) m->counter(p + "truncated")->Increment();
    if (resp.ok() && !resp->profile.empty()) {
      // EXPLAIN ANALYZE usage per session: how often, and how much work
      // the profiled queries covered (deterministic logical counts).
      m->counter(p + "profile.runs")->Increment();
      m->counter(p + "profile.rounds")
          ->Add(static_cast<int64_t>(resp->profile.rounds.size()));
    }
    m->histogram(p + "duration_ns")->Observe(duration_ns);
    m->gauge(p + "epoch")->Set(static_cast<int64_t>(epoch()));
  }
  return resp;
}

// ---------------------------------------------------------------------------
// The single-caller front door: a thin wrapper over an attached
// single-session server, so one code path serves one caller and many.

Result<QueryResponse> Run(const QueryRequest& req, storage::Database* db) {
  Server server(db);
  GRAPHLOG_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                            server.OpenSession());
  return session->Run(req);
}

}  // namespace graphlog
