// Server/Session: concurrent multi-session serving with epoch-snapshot
// isolation.
//
// The engine below this layer is deliberately single-caller: a query
// mutates its Database in place (IDB materialization, index builds), so
// one mutable Database cannot serve concurrent readers and a writer. The
// server layer restores concurrency with MVCC-lite snapshots built from
// machinery the cache layer already relies on:
//
//   * Relation uids are process-global and never reused, and
//     data_generation counters bump only on committed data changes — so
//     the pair (uid, data_generation) is a stamp that names one immutable
//     version of one relation's contents, forever.
//   * A Snapshot is an immutable map relation-name -> shared stamped
//     version plus the symbol table at commit time. Publishing a snapshot
//     retains the versions of untouched relations from the previous one
//     (copy-on-write at commit granularity) and copies only what the
//     batch changed.
//   * A Server owns the authoritative Database. Writers submit atomic
//     WriteBatches: under the commit lock the batch applies all-or-nothing
//     (a failure rolls every op back and publishes nothing), then the
//     server epoch bumps and a new head snapshot is published. Readers
//     never touch the authoritative Database.
//   * A Session pins a snapshot by materializing a private Database from
//     it: a clone of the snapshot's symbol table plus copies of the
//     version relations, which keep their server-issued uids and stamps —
//     so the result cache and CSR cache invalidate correctly inside the
//     session, and a pinned session is immune to later commits until it
//     Refresh()es. Queries run through the unchanged single-caller
//     pipeline against the private Database, giving every session the
//     full engine (parallel lanes, columnar path, result cache, views)
//     under isolation for free.
//
// Sessions intern query-local symbols (variable names, fresh auxiliary
// predicates) into their private tables after cloning, so symbol ids
// diverge across sessions beyond the shared server prefix. Everything
// keyed across sessions therefore scopes by Database::uid (the result
// cache already does) or stays per-session (each Session owns its CSR
// cache).
//
// Concurrency contract: Server is thread-safe (one writer at a time
// serializes on the commit lock; head() is a cheap pointer load under its
// own mutex). A Session is single-caller like the engine — one thread
// drives it at a time — but any number of sessions run concurrently, and
// Session::Cancel() may be called from any thread.
//
// graphlog::Run (graphlog/api.h) is a thin wrapper over an *attached*
// single-session server: attached mode shares the caller's Database with
// no snapshots (and therefore no isolation), which is exactly the old
// single-caller semantics with the same observable behavior and costs.

#ifndef GRAPHLOG_SERVER_SERVER_H_
#define GRAPHLOG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "columnar/csr_cache.h"
#include "common/result.h"
#include "durability/fsync_policy.h"
#include "gov/governor.h"
#include "graphlog/api.h"
#include "storage/database.h"

namespace graphlog {

class Session;

namespace durability {
struct BatchCodec;  // durability/wal.h: WAL wire format for WriteBatch
class Wal;
}  // namespace durability

namespace net {
struct WireBatchAccess;  // net/protocol.h: batch translation for the wire
}  // namespace net

/// \brief An immutable view of the database as of one committed epoch.
///
/// Shared versions: relations a commit does not touch are carried over
/// from the previous snapshot by shared_ptr, so retaining N epochs costs
/// only the relations that actually changed between them. Version
/// relations are stored index-free (indexes rebuild lazily inside the
/// session that materializes them).
struct Snapshot {
  uint64_t epoch = 0;
  /// The server's symbol table at publish time (shared with later
  /// snapshots until the table grows). Grow-only, so every Symbol a
  /// version relation's rows reference resolves here.
  std::shared_ptr<const SymbolTable> symbols;
  std::map<Symbol, std::shared_ptr<const storage::Relation>> relations;
};

/// \brief An ordered list of write operations that commits atomically:
/// either every op applies and one new epoch is published, or none do.
class WriteBatch {
 public:
  /// \brief Parses `text` as Datalog ground facts (storage/io.h) and
  /// inserts them, declaring relations on first use.
  WriteBatch& Facts(std::string text) {
    ops_.push_back({Op::kFacts, std::move(text), {}});
    return *this;
  }

  /// \brief Inserts one fact whose arguments are strings interned as
  /// symbols (numeric or mixed arguments go through Facts()).
  WriteBatch& Insert(std::string relation, std::vector<std::string> args) {
    ops_.push_back({Op::kInsert, std::move(relation), std::move(args)});
    return *this;
  }

  /// \brief Loads a fact file from disk (storage/io.h contract).
  WriteBatch& LoadFile(std::string path) {
    ops_.push_back({Op::kLoadFile, std::move(path), {}});
    return *this;
  }

  /// \brief Empties an existing relation (it stays declared). Clearing an
  /// unknown relation fails the batch.
  WriteBatch& Clear(std::string relation) {
    ops_.push_back({Op::kClear, std::move(relation), {}});
    return *this;
  }

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

 private:
  friend class Server;
  friend struct durability::BatchCodec;
  friend struct net::WireBatchAccess;
  struct Op {
    enum Kind : uint8_t { kFacts, kInsert, kLoadFile, kClear } kind;
    /// kFacts: the fact text; kInsert/kClear: the relation name;
    /// kLoadFile: the path.
    std::string text;
    std::vector<std::string> args;  ///< kInsert only
  };
  std::vector<Op> ops_;
};

struct ServerOptions {
  /// Registry for server.* / session.* accounting (and the default
  /// observability.metrics of every session). Null disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// Default result cache handed to sessions whose requests set none.
  /// Safe to share across sessions: the cache is internally synchronized
  /// and keys are scoped by Database::uid, so entries never replay across
  /// session symbol spaces.
  cache::ResultCache* result_cache = nullptr;
  /// Fault injector armed on write batches that carry no governor of
  /// their own (the io.load site etc.; see gov/fault_injection.h).
  gov::FaultInjector* faults = nullptr;
  /// Admission control: OpenSession fails with kBudgetExceeded once this
  /// many sessions are open. 0 = unlimited.
  size_t max_sessions = 0;
};

/// \brief Durable-mode configuration for Server::Open.
struct DurabilityOptions {
  /// When an appended WAL record reaches stable storage (see
  /// durability/fsync_policy.h for the per-policy crash contract).
  durability::FsyncPolicy fsync = durability::FsyncPolicy::kAlways;
  /// kGroupCommit: at most one fsync per this many milliseconds.
  uint64_t group_window_ms = 5;
};

/// \brief Per-session configuration; all fields optional.
struct SessionOptions {
  /// Metrics prefix ("session.<name>.*"); auto-assigned "s<N>" if empty.
  std::string name;
  /// Default per-query resource budget, applied when a request carries no
  /// governor of its own.
  gov::ResourceBudget budget;
  /// Default per-query deadline in milliseconds (same condition); 0 = none.
  uint64_t deadline_ms = 0;
  /// Fill-in defaults for request options left unset (null pointers are
  /// filled, false toggles are OR-ed in, num_threads applies when the
  /// request keeps the default 1).
  QueryOptions defaults;
};

/// \brief The concurrent front door: owns (or wraps) the Database, commits
/// write batches, publishes snapshots, and opens sessions.
class Server {
 public:
  /// \brief Owning mode: the server owns an empty authoritative Database
  /// and publishes an epoch-0 snapshot of it. The full isolation mode.
  explicit Server(ServerOptions opts = {});

  /// \brief Attached mode: wraps a caller-owned Database with no
  /// snapshots — sessions share `db` directly and see every write
  /// immediately. This is single-caller compatibility mode (the
  /// graphlog::Run wrapper); it provides the Session front door and
  /// atomic batches but NO isolation.
  explicit Server(storage::Database* db, ServerOptions opts = {});

  /// \brief Durable mode: opens (creating if needed) the directory `dir`
  /// and recovers the pre-crash state — the newest valid checkpoint plus
  /// a replay of the WAL tail through the same batch-apply machinery
  /// commits use. A torn WAL tail (interrupted final append) is
  /// truncated and the committed prefix recovered; interior corruption
  /// fails with kCorruptedLog and applies nothing. Once open, every
  /// Apply() appends to the WAL and syncs per `dur.fsync` BEFORE its
  /// epoch publishes. Caches, CSR snapshots, and statistics are not
  /// durable — they rebuild cold. Direct database() mutations bypass the
  /// log; durable servers must write through Apply().
  static Result<std::unique_ptr<Server>> Open(const std::string& dir,
                                              ServerOptions opts = {},
                                              DurabilityOptions dur = {});

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Opens a session pinned to the current head snapshot (owning
  /// mode) or sharing the attached Database (attached mode). The returned
  /// Session must not outlive the Server. Fails with kBudgetExceeded when
  /// ServerOptions::max_sessions is reached.
  Result<std::unique_ptr<Session>> OpenSession(SessionOptions opts = {});

  /// \brief Commits `batch` atomically against the authoritative
  /// Database and, in owning mode, publishes a new head snapshot one
  /// epoch later. On failure (parse error, arity clash, governed abort at
  /// io.load, ...) every op is rolled back, the epoch does not move, and
  /// no snapshot is published. Returns the number of facts inserted.
  /// `governor` bounds the batch; when null, ServerOptions::faults (if
  /// any) still applies.
  Result<size_t> Apply(const WriteBatch& batch,
                       const gov::GovernorContext* governor = nullptr);

  /// \brief The current head snapshot (owning mode; null when attached).
  /// A cheap shared_ptr load — never blocks behind an in-flight commit.
  std::shared_ptr<const Snapshot> head() const;

  /// \brief Epoch of the latest commit (0 = nothing committed yet).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  obs::MetricsRegistry* metrics() const { return opts_.metrics; }
  cache::ResultCache* result_cache() const { return opts_.result_cache; }
  bool attached() const { return attached_; }
  size_t open_sessions() const {
    return open_sessions_.load(std::memory_order_relaxed);
  }

  /// \brief The authoritative Database. For setup/inspection from the
  /// writer's thread only; mutating it directly bypasses atomicity and
  /// snapshot publication — prefer Apply(). After direct mutations in
  /// owning mode, call Publish() to make them visible to new snapshots.
  storage::Database& database() { return *db_; }

  /// \brief Owning mode: re-publishes the head snapshot from the current
  /// authoritative state under a fresh epoch (for out-of-band direct
  /// mutations via database()). No-op when attached. NOT logged: a
  /// durable server's out-of-band mutations do not survive recovery.
  void Publish();

  /// \brief True when this server was opened durable (Server::Open).
  bool durable() const { return wal_ != nullptr; }

  /// \brief Durable mode: the directory holding wal.log + checkpoint.db.
  const std::string& dir() const { return dir_; }

  /// \brief Durable mode: the write-ahead log (null otherwise). For
  /// status surfaces (tail offset, fsync policy) — appends stay behind
  /// Apply().
  durability::Wal* wal() const { return wal_.get(); }

  /// \brief Durable mode: serializes the authoritative database at the
  /// current epoch (temp-file + atomic rename; an aborted write never
  /// clobbers the previous valid checkpoint) and truncates the WAL
  /// behind it. Fails with kInvalidArgument on non-durable servers.
  Status Checkpoint();

 private:
  friend class Session;

  /// Everything needed to undo one successfully-applied batch: the
  /// pre-batch size/stamp of every relation plus pre-batch copies of
  /// cleared ones. The durable commit path uses it to roll back an
  /// in-memory apply whose WAL append failed.
  struct BatchUndo {
    std::map<Symbol, std::pair<size_t, uint64_t>> pre_state;
    std::map<Symbol, storage::Relation> cleared;
  };

  /// Restores `db` to the pre-batch state `undo` captured (created
  /// relations removed, grown relations truncated, cleared relations
  /// reinstated).
  static void UndoBatch(storage::Database* db, BatchUndo&& undo);

  /// Applies every op of `batch` to `db` all-or-nothing; on failure the
  /// database is restored (created relations removed, grown relations
  /// truncated, cleared relations reinstated from copies) and the error
  /// returned. Static so Session fast-forward replays reuse it.
  /// `capture_files` (when non-null) receives the raw text of every
  /// kLoadFile op, in op order; `replay_files` (when non-null) supplies
  /// those texts back so a replay applies the exact bytes the original
  /// commit read instead of re-reading files that may have changed on
  /// disk since. Every replay consumer — session fast-forward and WAL
  /// recovery alike — goes through captured bytes; there is no
  /// path-based replay. `undo` (when non-null) receives, on success, the
  /// rollback state for UndoBatch.
  static Result<size_t> ApplyBatchTo(
      const WriteBatch& batch, storage::Database* db,
      const gov::GovernorContext* governor,
      std::vector<std::string>* capture_files = nullptr,
      const std::vector<std::string>* replay_files = nullptr,
      BatchUndo* undo = nullptr);

  Result<size_t> ApplyInternal(const WriteBatch& batch,
                               const gov::GovernorContext* governor,
                               uint64_t* base_epoch,
                               uint64_t* committed_epoch,
                               std::vector<std::string>* capture_files);

  /// Builds and installs a new head snapshot from the authoritative
  /// state, reusing the previous snapshot's versions for every relation
  /// whose (uid, data_generation, size) stamp is unchanged. mu_ held.
  void RebuildHeadLocked();

  void ReleaseSession();

  ServerOptions opts_;
  storage::Database owned_db_;  ///< authoritative store in owning mode
  storage::Database* db_;       ///< &owned_db_ or the attached database
  const bool attached_;
  /// Serializes Apply()/Publish() end-to-end: one writer at a time.
  std::mutex mu_;
  /// Guards only the head_ pointer swap, so readers opening snapshots
  /// never wait for a long ingest holding mu_.
  mutable std::mutex head_mu_;
  std::shared_ptr<const Snapshot> head_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> open_sessions_{0};
  std::atomic<uint64_t> session_seq_{0};
  /// Durable mode only (Server::Open); null on in-memory servers.
  std::unique_ptr<durability::Wal> wal_;
  std::string dir_;
};

/// \brief A client handle: a pinned snapshot to query plus a write door.
///
/// Owning-mode sessions materialize a private Database from the snapshot
/// (fresh Database::uid per materialization; relation copies keep their
/// server stamps) and stay pinned until Refresh() or a write of their
/// own. Attached-mode sessions share the server's Database.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// \brief Runs one query against the pinned snapshot through the full
  /// pipeline (graphlog/api.h), filling unset request options from the
  /// session defaults, the server's metrics/result-cache, and the
  /// session's CSR cache; a request without its own governor is governed
  /// by the session budget/deadline (when configured) and the session
  /// cancellation token. Results materialize into the session database.
  Result<QueryResponse> Run(QueryRequest req);

  /// \brief Commits `batch` through the server, then brings this session
  /// to the committed epoch: when no other writer intervened and the ops
  /// replay cleanly onto the private database (the common case), the
  /// session fast-forwards in place — session-materialized IDB results
  /// survive, and replayed relations advance to stamps matching the
  /// published versions; otherwise the session fully Refresh()es.
  Result<size_t> Apply(const WriteBatch& batch,
                       const gov::GovernorContext* governor = nullptr);

  /// \brief Re-pins to the latest head snapshot. Cheap no-op when already
  /// current. When the server symbol table grew past this session's base
  /// prefix, the private database is rebuilt from scratch (fresh uid;
  /// session-local materializations dropped — their symbol ids could
  /// collide with the server's new ones); otherwise EDB copies update in
  /// place and session-local relations survive. No-op when attached.
  Status Refresh();

  /// \brief Requests cancellation of the in-flight (or next) governed
  /// query on this session; callable from any thread. Takes effect when
  /// queries are governed — a session budget/deadline is configured or
  /// the request carries this session's token.
  void Cancel() const { cancel_.Cancel(); }
  const gov::CancellationToken& cancellation_token() const { return cancel_; }

  /// \brief Epoch this session is pinned at (attached mode: the server's
  /// live epoch).
  uint64_t epoch() const {
    return attached_ ? server_->epoch() : epoch_;
  }
  const std::string& name() const { return name_; }

  /// \brief The session's private database (attached mode: the shared
  /// one). Same single-caller discipline as the session itself.
  storage::Database& database() { return *db_; }
  const storage::Database& database() const { return *db_; }

  /// \brief Per-session CSR snapshot cache (columnar runs default to it).
  columnar::CsrCache& csr_cache() { return csr_cache_; }

  struct Stats {
    uint64_t queries = 0;
    uint64_t errors = 0;
    uint64_t cache_hits = 0;
    uint64_t writes = 0;
    uint64_t refreshes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Server;
  Session(Server* server, SessionOptions opts, std::string name);

  /// Rebuilds the private database from `snap`: fresh Database, cloned
  /// symbol table, copied version relations.
  void Materialize(const std::shared_ptr<const Snapshot>& snap);

  Server* server_;
  SessionOptions opts_;
  std::string name_;
  const bool attached_;
  storage::Database owned_db_;
  storage::Database* db_;
  uint64_t epoch_ = 0;
  /// Size of the server symbol-table prefix the private table was cloned
  /// from; ids >= this are session-local and gate in-place refresh.
  size_t base_symbols_ = 0;
  gov::CancellationToken cancel_;
  columnar::CsrCache csr_cache_;
  Stats stats_;
};

}  // namespace graphlog

#endif  // GRAPHLOG_SERVER_SERVER_H_
