// Bound-closure specialization: magic sets, restricted to TC predicates.
//
// Section 6 of the paper points implementations at "the existing work on
// transitive closure computation and linear Datalog optimization". The
// lambda translation materializes every closure in full, even when the
// query fixes an endpoint (the Figure 12 RT-scale query asks for cp-paths
// *from Rome* and *to Tokyo*). This pass rewrites such closures into
// seeded reachability:
//
//   uses of  t(c.., Y.., W..)  with a constant X-block become
//       t@c(Y, W) :- q(c, Y, W).
//       t@c(Y, W) :- t@c(Z, W), q(Z, Y, W).      (forward seeding)
//
//   uses of  t(X.., c.., W..)  with a constant Y-block become
//       t@..c(X, W) :- q(X, c, W).
//       t@..c(X, W) :- q(X, Z, W), t@..c(Z, W).  (backward seeding)
//
// A closure's defining TC rules are dropped once every use has been
// specialized (unless the predicate is protected as a query result).
// The rewrite is semantics-preserving; the fig12 bench measures the win.

#ifndef GRAPHLOG_TRANSLATE_MAGIC_TC_H_
#define GRAPHLOG_TRANSLATE_MAGIC_TC_H_

#include <set>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"

namespace graphlog::translate {

/// \brief Statistics of one specialization pass.
struct MagicTcStats {
  int closures_specialized = 0;  ///< distinct (predicate, seed) rewrites
  int uses_rewritten = 0;
  int rules_dropped = 0;
};

/// \brief Applies the rewrite to `prog`. `protected_predicates` (e.g. the
/// distinguished predicates of a query) are never removed even when all
/// their uses were specialized.
Result<datalog::Program> SpecializeBoundClosures(
    const datalog::Program& prog, SymbolTable* syms,
    const std::set<Symbol>& protected_predicates = {},
    MagicTcStats* stats = nullptr);

}  // namespace graphlog::translate

#endif  // GRAPHLOG_TRANSLATE_MAGIC_TC_H_
