// Algorithm 3.1 of the paper: translation of stratified linear Datalog
// (SL-DATALOG) into stratified TC Datalog (STC-DATALOG).
//
// Following Figure 7: for each strongly connected component S_l of the
// dependence graph containing recursion, the algorithm introduces an edge
// predicate e_l and a closure predicate t_l over "configuration" nodes of
// width m+1 (m = max arity in the SCC). A configuration encodes a
// predicate instance p_i(a_1..a_n_i) as the tuple (a_1..a_n_i, c_i, ...,
// c_i) — the signature constant c_i both pads and tags — and a distinguished
// start configuration (c, ..., c). Then:
//
//   recursive rule  p_i(X) :- p_j(Y), s_1..s_k   becomes
//       e_l(cfg_j(Y), cfg_i(X)) :- s_1..s_k.
//   non-recursive   p_i(X) :- s_1..s_k           becomes
//       e_l(start, cfg_i(X)) :- s_1..s_k.
//   t_l := TC(e_l)   (the TC rule pair)
//   p_i(X) :- t_l(start, cfg_i(X)).
//
// Safety note (implementation addition): the paper's r'_1 may leave
// pass-through variables (variables of the recursive subgoal p_j that do
// not occur in s_1..s_k) unbound once p_j is deleted from the body. These
// range over the active domain, so the translation grounds them with a
// generated unary predicate `dom` holding every constant of the EDB and of
// the program. This preserves equivalence for all range-restricted inputs
// and keeps the output inside STC-DATALOG (dom is non-recursive).
//
// The signature constants are fresh interned symbols, guaranteed distinct
// from every symbol present at translation time.

#ifndef GRAPHLOG_TRANSLATE_SL_TO_STC_H_
#define GRAPHLOG_TRANSLATE_SL_TO_STC_H_

#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"

namespace graphlog::translate {

/// \brief Options for TranslateSlToStc.
struct SlToStcOptions {
  /// Generate `dom` rules/facts and use them to ground pass-through
  /// variables. Disable only for inputs known to bind every recursive
  /// variable in the non-recursive body part (e.g. Figure 8).
  bool add_domain_rules = true;
};

/// \brief Output of Algorithm 3.1.
struct SlToStcResult {
  datalog::Program program;
  /// The start/pad constant c and per-predicate signature constants.
  Symbol start_constant = kNoSymbol;
  /// e_l / t_l predicates, one pair per recursive SCC.
  std::vector<std::pair<Symbol, Symbol>> edge_closure_pairs;
  /// The domain predicate, when domain rules were emitted.
  Symbol dom_predicate = kNoSymbol;
};

/// \brief Runs Algorithm 3.1. Fails with kNotLinear when `input` is not
/// linear, kUnstratifiable when it has no stratification, and kUnsupported
/// when it uses aggregates or arithmetic (outside the paper's fragment).
Result<SlToStcResult> TranslateSlToStc(const datalog::Program& input,
                                       SymbolTable* syms,
                                       const SlToStcOptions& options = {});

}  // namespace graphlog::translate

#endif  // GRAPHLOG_TRANSLATE_SL_TO_STC_H_
