#include "translate/sl_to_stc.h"

#include <algorithm>
#include <map>
#include <set>

#include "datalog/analysis.h"

namespace graphlog::translate {

using datalog::Atom;
using datalog::DependenceGraph;
using datalog::Head;
using datalog::HeadTerm;
using datalog::Literal;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

namespace {

/// Collects every constant Value appearing in the program (heads, atoms,
/// comparisons) — the candidates for the generated domain.
std::vector<Value> ProgramConstants(const Program& prog) {
  std::vector<Value> out;
  auto add = [&](const Term& t) {
    if (!t.is_constant()) return;
    if (std::find(out.begin(), out.end(), t.value()) == out.end()) {
      out.push_back(t.value());
    }
  };
  for (const Rule& r : prog.rules) {
    for (const HeadTerm& h : r.head.args) {
      if (!h.is_aggregate) add(h.term);
    }
    for (const Literal& l : r.body) {
      switch (l.kind) {
        case Literal::Kind::kAtom:
        case Literal::Kind::kNegatedAtom:
          for (const Term& t : l.atom.args) add(t);
          break;
        case Literal::Kind::kComparison:
          add(l.lhs);
          add(l.rhs);
          break;
        case Literal::Kind::kAssignment:
          break;
      }
    }
  }
  return out;
}

/// Variables limited by the positive relational atoms of `body` (plus
/// equality propagation).
std::set<Symbol> LimitedVars(const std::vector<Literal>& body) {
  std::set<Symbol> limited;
  for (const Literal& l : body) {
    if (l.is_positive_atom()) {
      for (const Term& t : l.atom.args) {
        if (t.is_variable()) limited.insert(t.var());
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : body) {
      if (l.kind != Literal::Kind::kComparison ||
          l.cmp != datalog::CmpOp::kEq) {
        continue;
      }
      auto bound = [&](const Term& t) {
        return t.is_constant() ||
               (t.is_variable() && limited.count(t.var()) > 0);
      };
      if (bound(l.lhs) && l.rhs.is_variable() &&
          limited.insert(l.rhs.var()).second) {
        changed = true;
      }
      if (bound(l.rhs) && l.lhs.is_variable() &&
          limited.insert(l.lhs.var()).second) {
        changed = true;
      }
    }
  }
  return limited;
}

}  // namespace

Result<SlToStcResult> TranslateSlToStc(const Program& input,
                                       SymbolTable* syms,
                                       const SlToStcOptions& options) {
  // Fragment check: the paper's language is relational with stratified
  // negation (plus comparisons, which are harmless filters).
  for (const Rule& r : input.rules) {
    if (r.head.has_aggregates()) {
      return Status::Unsupported(
          "Algorithm 3.1 applies to aggregate-free programs");
    }
    for (const Literal& l : r.body) {
      if (l.kind == Literal::Kind::kAssignment) {
        return Status::Unsupported(
            "Algorithm 3.1 applies to arithmetic-free programs");
      }
    }
  }
  GRAPHLOG_RETURN_NOT_OK(datalog::CheckArities(input, *syms));
  GRAPHLOG_RETURN_NOT_OK(datalog::CheckLinear(input, *syms));
  GRAPHLOG_RETURN_NOT_OK(datalog::Stratify(input, *syms).status());

  DependenceGraph g = DependenceGraph::Build(input);
  std::map<Symbol, int> comp_of = g.ComponentIndex();
  auto comps = g.StronglyConnectedComponents();

  SlToStcResult out;
  out.start_constant = syms->Fresh("c-sig");
  const Value start_const = Value::Sym(out.start_constant);

  Symbol dom = kNoSymbol;
  bool dom_used = false;
  if (options.add_domain_rules) dom = syms->Fresh("dom");

  for (size_t ci = 0; ci < comps.size(); ++ci) {
    const std::vector<Symbol>& comp = comps[ci];
    bool recursive = comp.size() > 1 || g.HasEdge(comp[0], comp[0]);

    std::vector<const Rule*> rules_in;
    for (const Rule& r : input.rules) {
      if (std::find(comp.begin(), comp.end(), r.head.predicate) !=
          comp.end()) {
        rules_in.push_back(&r);
      }
    }
    if (rules_in.empty()) continue;  // pure EDB component

    if (!recursive) {
      for (const Rule* r : rules_in) out.program.Add(*r);
      continue;
    }

    // --- Recursive SCC: build e_l / t_l per Figure 7. ---
    std::map<Symbol, size_t> arity;
    size_t m = 0;
    for (const Rule* r : rules_in) {
      arity[r->head.predicate] = r->head.arity();
    }
    for (const Literal& l : rules_in[0]->body) {
      (void)l;  // arities of body members of the SCC are covered by heads
    }
    for (Symbol p : comp) {
      auto it = arity.find(p);
      if (it != arity.end()) m = std::max(m, it->second);
    }
    const size_t w = m + 1;  // configuration width

    // Signature constant per predicate of the SCC.
    std::map<Symbol, Value> signature;
    for (Symbol p : comp) {
      signature[p] = Value::Sym(syms->Fresh("c-" + syms->name(p)));
    }

    const std::string scc_name = syms->name(comp[0]);
    Symbol e_l = syms->Fresh("e-" + scc_name);
    Symbol t_l = syms->Fresh("t-" + scc_name);
    out.edge_closure_pairs.emplace_back(e_l, t_l);

    // cfg_i(args): args padded to width w with the signature constant.
    auto cfg = [&](Symbol pred, const std::vector<Term>& args) {
      std::vector<Term> node = args;
      while (node.size() < w) {
        node.push_back(Term::Const(signature.at(pred)));
      }
      return node;
    };
    auto start_cfg = [&]() {
      return std::vector<Term>(w, Term::Const(start_const));
    };

    for (const Rule* r : rules_in) {
      // Locate the (single, by linearity) recursive subgoal.
      int rec_idx = -1;
      for (size_t bi = 0; bi < r->body.size(); ++bi) {
        const Literal& l = r->body[bi];
        if (l.is_relational() && comp_of.count(l.atom.predicate) > 0 &&
            comp_of.at(l.atom.predicate) == comp_of.at(r->head.predicate)) {
          rec_idx = static_cast<int>(bi);
          // Negated recursion cannot be stratified; Stratify() above
          // already rejected it.
        }
      }

      Rule nr;  // the e_l rule
      nr.head.predicate = e_l;
      std::vector<Term> dst = cfg(r->head.predicate, r->head.ToAtom().args);
      std::vector<Term> src;
      std::vector<Literal> body;
      if (rec_idx >= 0) {
        const Atom& rec = r->body[rec_idx].atom;
        src = cfg(rec.predicate, rec.args);
        for (size_t bi = 0; bi < r->body.size(); ++bi) {
          if (static_cast<int>(bi) != rec_idx) body.push_back(r->body[bi]);
        }
      } else {
        src = start_cfg();
        body = r->body;
      }

      // Ground pass-through variables with dom (see header comment).
      std::set<Symbol> limited = LimitedVars(body);
      std::set<Symbol> need;
      for (const std::vector<Term>* side : {&src, &dst}) {
        for (const Term& t : *side) {
          if (t.is_variable() && limited.count(t.var()) == 0) {
            need.insert(t.var());
          }
        }
      }
      if (!need.empty()) {
        if (dom == kNoSymbol) {
          return Status::UnsafeRule(
              "rule '" + r->ToString(*syms) +
              "' has pass-through variables and domain grounding is "
              "disabled");
        }
        for (Symbol v : need) {
          Atom a;
          a.predicate = dom;
          a.args = {Term::Var(v)};
          body.push_back(Literal::Positive(std::move(a)));
          dom_used = true;
        }
      }

      for (const Term& t : src) nr.head.args.push_back(HeadTerm::Plain(t));
      for (const Term& t : dst) nr.head.args.push_back(HeadTerm::Plain(t));
      nr.body = std::move(body);
      out.program.Add(std::move(nr));
    }

    // TC rule pair for t_l (Definition 3.2 shape, n = w).
    {
      auto vars = [&](const char* base, size_t count) {
        std::vector<Term> v;
        for (size_t i = 0; i < count; ++i) {
          v.push_back(Term::Var(
              syms->Fresh(std::string("_") + base + std::to_string(i))));
        }
        return v;
      };
      std::vector<Term> X = vars("TX", w), Y = vars("TY", w),
                        Z = vars("TZ", w);
      auto atom = [&](Symbol p, const std::vector<Term>& a,
                      const std::vector<Term>& b) {
        Atom at;
        at.predicate = p;
        at.args = a;
        at.args.insert(at.args.end(), b.begin(), b.end());
        return at;
      };
      Rule base;
      base.head.predicate = t_l;
      for (const Term& t : X) base.head.args.push_back(HeadTerm::Plain(t));
      for (const Term& t : Y) base.head.args.push_back(HeadTerm::Plain(t));
      base.body.push_back(Literal::Positive(atom(e_l, X, Y)));
      out.program.Add(base);

      Rule step;
      step.head = base.head;
      step.body.push_back(Literal::Positive(atom(e_l, X, Z)));
      step.body.push_back(Literal::Positive(atom(t_l, Z, Y)));
      out.program.Add(std::move(step));
    }

    // Extraction rules r'_3: p_i(V...) :- t_l(start, cfg_i(V...)).
    for (Symbol p : comp) {
      auto it = arity.find(p);
      if (it == arity.end()) continue;
      Rule ext;
      ext.head.predicate = p;
      std::vector<Term> V;
      for (size_t i = 0; i < it->second; ++i) {
        V.push_back(Term::Var(syms->Fresh("_V" + std::to_string(i))));
      }
      for (const Term& t : V) ext.head.args.push_back(HeadTerm::Plain(t));
      Atom a;
      a.predicate = t_l;
      a.args = start_cfg();
      std::vector<Term> dst = cfg(p, V);
      a.args.insert(a.args.end(), dst.begin(), dst.end());
      ext.body.push_back(Literal::Positive(std::move(a)));
      out.program.Add(std::move(ext));
    }
  }

  // Domain rules: one projection rule per EDB column, one fact per program
  // constant.
  if (dom_used) {
    out.dom_predicate = dom;
    std::map<Symbol, size_t> arities = datalog::PredicateArities(input);
    std::set<Symbol> idb;
    for (const Rule& r : input.rules) idb.insert(r.head.predicate);
    for (const auto& [pred, a] : arities) {
      if (idb.count(pred) > 0 || a == 0) continue;
      for (size_t col = 0; col < a; ++col) {
        Rule r;
        r.head.predicate = dom;
        Symbol v = syms->Fresh("_D");
        r.head.args.push_back(HeadTerm::Plain(Term::Var(v)));
        Atom at;
        at.predicate = pred;
        for (size_t k = 0; k < a; ++k) {
          at.args.push_back(k == col
                                ? Term::Var(v)
                                : Term::Var(syms->Fresh("_Dw")));
        }
        r.body.push_back(Literal::Positive(std::move(at)));
        out.program.Add(std::move(r));
      }
    }
    for (const Value& c : ProgramConstants(input)) {
      Rule r;
      r.head.predicate = dom;
      r.head.args.push_back(HeadTerm::Plain(Term::Const(c)));
      out.program.Add(std::move(r));
    }
  }

  return out;
}

}  // namespace graphlog::translate
