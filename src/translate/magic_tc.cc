#include "translate/magic_tc.h"

#include <map>
#include <vector>

#include "datalog/analysis.h"

namespace graphlog::translate {

using datalog::Atom;
using datalog::HeadTerm;
using datalog::Literal;
using datalog::MatchTcRules;
using datalog::Program;
using datalog::Rule;
using datalog::TcShape;
using datalog::Term;

namespace {

/// A specialization target: one closure predicate seeded by one constant
/// block on one side.
struct Seed {
  Symbol closure = kNoSymbol;
  bool forward = true;            // true: X-block constant; false: Y-block
  std::vector<Value> constants;   // the bound block, length n

  bool operator<(const Seed& o) const {
    if (closure != o.closure) return closure < o.closure;
    if (forward != o.forward) return forward < o.forward;
    return std::lexicographical_compare(
        constants.begin(), constants.end(), o.constants.begin(),
        o.constants.end(),
        [](const Value& a, const Value& b) { return a < b; });
  }
};

/// True when args[lo, lo+n) are all constants; collects them.
bool ConstantBlock(const std::vector<Term>& args, size_t lo, size_t n,
                   std::vector<Value>* out) {
  out->clear();
  for (size_t i = lo; i < lo + n; ++i) {
    if (!args[i].is_constant()) return false;
    out->push_back(args[i].value());
  }
  return true;
}

std::string SeedName(const Seed& seed, const SymbolTable& syms) {
  std::string name = syms.name(seed.closure);
  name += seed.forward ? "-from" : "-to";
  for (const Value& v : seed.constants) {
    name += "-" + v.ToString(syms);
  }
  return name;
}

}  // namespace

Result<Program> SpecializeBoundClosures(
    const Program& prog, SymbolTable* syms,
    const std::set<Symbol>& protected_predicates, MagicTcStats* stats) {
  // 1. Identify TC-shaped predicates and their shapes.
  std::map<Symbol, TcShape> shapes;
  for (Symbol p : prog.HeadPredicates()) {
    auto shape = MatchTcRules(prog, p);
    if (shape.ok()) shapes.emplace(p, *shape);
  }

  // 2. Scan uses. A closure qualifies when every positive use binds the
  // same side with constants (per use; different constants make distinct
  // seeds) and it is never used negated or as a base of another closure's
  // rules... (uses inside its own TC rules do not count).
  std::map<Symbol, std::vector<const Literal*>> uses;
  std::map<Symbol, bool> disqualified;
  for (const Rule& r : prog.rules) {
    bool is_tc_rule_of_head =
        shapes.count(r.head.predicate) > 0;  // its own TC rules
    for (const Literal& l : r.body) {
      if (!l.is_relational()) continue;
      auto it = shapes.find(l.atom.predicate);
      if (it == shapes.end()) continue;
      if (is_tc_rule_of_head && l.atom.predicate == r.head.predicate) {
        continue;  // the recursive self-use inside the TC pair
      }
      if (l.is_negated_atom()) {
        disqualified[l.atom.predicate] = true;
        continue;
      }
      uses[l.atom.predicate].push_back(&l);
    }
  }

  std::map<const Literal*, Seed> plan;  // use -> seed
  std::set<Symbol> fully_specialized;
  for (const auto& [closure, shape] : shapes) {
    if (disqualified[closure]) continue;
    auto it = uses.find(closure);
    if (it == uses.end() || it->second.empty()) continue;
    bool all = true;
    std::map<const Literal*, Seed> local;
    for (const Literal* l : it->second) {
      Seed seed;
      seed.closure = closure;
      std::vector<Value> block;
      if (ConstantBlock(l->atom.args, 0, shape.n, &block)) {
        seed.forward = true;
        seed.constants = std::move(block);
      } else if (ConstantBlock(l->atom.args, shape.n, shape.n, &block)) {
        seed.forward = false;
        seed.constants = std::move(block);
      } else {
        all = false;
        break;
      }
      local.emplace(l, std::move(seed));
    }
    if (!all) continue;
    for (auto& [l, seed] : local) plan.emplace(l, std::move(seed));
    fully_specialized.insert(closure);
  }

  if (plan.empty()) {
    return prog;  // nothing to do
  }

  // 3. Emit the rewritten program.
  Program out;
  std::map<Seed, Symbol> seed_preds;
  auto seed_pred = [&](const Seed& seed) {
    auto it = seed_preds.find(seed);
    if (it != seed_preds.end()) return it->second;
    Symbol s = syms->Fresh(SeedName(seed, *syms));
    seed_preds.emplace(seed, s);
    if (stats != nullptr) ++stats->closures_specialized;
    return s;
  };

  for (const Rule& r : prog.rules) {
    // Drop the TC rule pair of fully specialized, unprotected closures.
    if (fully_specialized.count(r.head.predicate) > 0 &&
        protected_predicates.count(r.head.predicate) == 0) {
      if (stats != nullptr) ++stats->rules_dropped;
      continue;
    }
    Rule nr;
    nr.head = r.head;
    for (const Literal& l : r.body) {
      auto it = plan.find(&l);
      if (it == plan.end()) {
        nr.body.push_back(l);
        continue;
      }
      const Seed& seed = it->second;
      const TcShape& shape = shapes.at(seed.closure);
      Atom a;
      a.predicate = seed_pred(seed);
      // Free block + parameter block keep their original terms.
      size_t free_lo = seed.forward ? shape.n : 0;
      for (size_t i = free_lo; i < free_lo + shape.n; ++i) {
        a.args.push_back(l.atom.args[i]);
      }
      for (size_t i = 2 * shape.n; i < l.atom.args.size(); ++i) {
        a.args.push_back(l.atom.args[i]);
      }
      nr.body.push_back(Literal::Positive(std::move(a)));
      if (stats != nullptr) ++stats->uses_rewritten;
    }
    out.Add(std::move(nr));
  }

  // 4. Define the seeded predicates.
  for (const auto& [seed, pred] : seed_preds) {
    const TcShape& shape = shapes.at(seed.closure);
    auto vars = [&](const char* base, size_t count) {
      std::vector<Term> v;
      for (size_t i = 0; i < count; ++i) {
        v.push_back(Term::Var(
            syms->Fresh(std::string("_") + base + std::to_string(i))));
      }
      return v;
    };
    std::vector<Term> free = vars("F", shape.n), mid = vars("M", shape.n),
                      params = vars("P", shape.w);
    std::vector<Term> cblock;
    for (const Value& v : seed.constants) cblock.push_back(Term::Const(v));

    auto base_atom = [&](const std::vector<Term>& x,
                         const std::vector<Term>& y) {
      Atom a;
      a.predicate = shape.base;
      a.args = x;
      a.args.insert(a.args.end(), y.begin(), y.end());
      a.args.insert(a.args.end(), params.begin(), params.end());
      return a;
    };
    auto seeded_atom = [&](const std::vector<Term>& x) {
      Atom a;
      a.predicate = pred;
      a.args = x;
      a.args.insert(a.args.end(), params.begin(), params.end());
      return a;
    };
    auto head_of = [&](const std::vector<Term>& x) {
      datalog::Head h;
      h.predicate = pred;
      for (const Term& t : x) h.args.push_back(HeadTerm::Plain(t));
      for (const Term& t : params) h.args.push_back(HeadTerm::Plain(t));
      return h;
    };

    Rule base, step;
    if (seed.forward) {
      // t@c(Y, P) :- q(c, Y, P).   t@c(Y, P) :- t@c(Z, P), q(Z, Y, P).
      base.head = head_of(free);
      base.body.push_back(Literal::Positive(base_atom(cblock, free)));
      step.head = head_of(free);
      step.body.push_back(Literal::Positive(seeded_atom(mid)));
      step.body.push_back(Literal::Positive(base_atom(mid, free)));
    } else {
      // t@..c(X, P) :- q(X, c, P). t@..c(X, P) :- q(X, Z, P), t@..c(Z, P).
      base.head = head_of(free);
      base.body.push_back(Literal::Positive(base_atom(free, cblock)));
      step.head = head_of(free);
      step.body.push_back(Literal::Positive(base_atom(free, mid)));
      step.body.push_back(Literal::Positive(seeded_atom(mid)));
    }
    out.Add(std::move(base));
    out.Add(std::move(step));
  }
  return out;
}

}  // namespace graphlog::translate
