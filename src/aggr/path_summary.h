// Path summarization (Section 4 of the paper).
//
// Computes, for every pair of nodes (u, v) connected by a path in a
// weighted edge relation base(u, v, w), the aggregate
//
//     across-agg  over all paths p from u to v  of  along-agg of the
//     weights on p
//
// e.g. "the length of a shortest path" is (along=sum, across=min) and the
// critical-path computation of Figure 11 is (along=sum, across=max).
//
// Supported combinations:
//   along  ∈ {sum, count, min, max}
//   across ∈ {min, max}
//
// Implementation: per-source relaxation to fixpoint (Bellman-Ford style).
// For bounded along-operators (min/max) the value lattice is finite and
// relaxation always converges. For sum/count, a cycle that keeps improving
// the objective (a negative cycle under across=min, any reachable cycle
// with improving weight under across=max) makes the query unbounded and is
// reported as kCycleInPath — the scheduling use case expects a DAG.

#ifndef GRAPHLOG_AGGR_PATH_SUMMARY_H_
#define GRAPHLOG_AGGR_PATH_SUMMARY_H_

#include "common/result.h"
#include "datalog/ast.h"
#include "storage/relation.h"

namespace graphlog::aggr {

/// \brief Options for PathSummarize.
struct PathSummaryOptions {
  datalog::AggKind along = datalog::AggKind::kSum;
  datalog::AggKind across = datalog::AggKind::kMin;
  /// Column of the base relation holding the weight; the first two columns
  /// are the edge endpoints. Ignored when along == count.
  uint32_t weight_column = 2;
};

/// \brief Summarizes paths of `base` (arity >= 2; endpoints in columns
/// 0 and 1; numeric weights in `weight_column` unless along == count).
///
/// Returns a ternary relation (u, v, value) with one row per ordered pair
/// of distinct-or-equal nodes connected by a non-empty path. Weight values
/// are int or double; the result is double when any weight is double.
Result<storage::Relation> PathSummarize(const storage::Relation& base,
                                        const PathSummaryOptions& options);

}  // namespace graphlog::aggr

#endif  // GRAPHLOG_AGGR_PATH_SUMMARY_H_
