#include "aggr/path_summary.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace graphlog::aggr {

using datalog::AggKind;
using storage::Relation;
using storage::Tuple;

namespace {

struct WeightedEdge {
  uint32_t from, to;
  double w;
};

double Extend(AggKind along, double path_value, double w) {
  switch (along) {
    case AggKind::kSum:
      return path_value + w;
    case AggKind::kCount:
      return path_value + 1.0;
    case AggKind::kMin:
      return std::min(path_value, w);
    case AggKind::kMax:
      return std::max(path_value, w);
    case AggKind::kAvg:
      return path_value;  // rejected earlier
  }
  return path_value;
}

double FirstStep(AggKind along, double w) {
  return along == AggKind::kCount ? 1.0 : w;
}

bool Better(AggKind across, double a, double b) {
  return across == AggKind::kMin ? a < b : a > b;
}

}  // namespace

Result<Relation> PathSummarize(const Relation& base,
                               const PathSummaryOptions& options) {
  if (options.across != AggKind::kMin && options.across != AggKind::kMax) {
    return Status::Unsupported("across-path aggregate must be min or max");
  }
  if (options.along == AggKind::kAvg) {
    return Status::Unsupported("avg along paths is not path-decomposable");
  }
  if (base.arity() < 2) {
    return Status::InvalidArgument("base relation must have arity >= 2");
  }
  bool needs_weight = options.along != AggKind::kCount;
  if (needs_weight && options.weight_column >= base.arity()) {
    return Status::InvalidArgument("weight column out of range");
  }

  // Intern nodes and build the edge list.
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<Value> values;
  auto intern = [&](const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  };
  std::vector<WeightedEdge> edges;
  bool any_double = false;
  for (const Tuple& t : base.rows()) {
    double w = 0.0;
    if (needs_weight) {
      const Value& wv = t[options.weight_column];
      if (!wv.is_numeric()) {
        return Status::TypeError("non-numeric path weight");
      }
      if (wv.is_double()) any_double = true;
      w = wv.ToDouble();
    }
    edges.push_back(WeightedEdge{intern(t[0]), intern(t[1]), w});
  }
  size_t n = values.size();

  // Per-source relaxation. Group edges by source for locality.
  std::vector<std::vector<WeightedEdge>> out_edges(n);
  for (const WeightedEdge& e : edges) out_edges[e.from].push_back(e);

  bool unbounded_possible = options.along == AggKind::kSum ||
                            options.along == AggKind::kCount;

  Relation result(3);
  std::vector<double> dist(n);
  std::vector<bool> has(n);
  for (uint32_t s = 0; s < n; ++s) {
    std::fill(has.begin(), has.end(), false);
    // Single-edge paths out of s.
    for (const WeightedEdge& e : out_edges[s]) {
      double v = FirstStep(options.along, e.w);
      if (!has[e.to] || Better(options.across, v, dist[e.to])) {
        dist[e.to] = v;
        has[e.to] = true;
      }
    }
    // Relax to fixpoint. For sum/count, improvement after n rounds means
    // an improving cycle -> the objective is unbounded.
    size_t round = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ++round;
      for (uint32_t u = 0; u < n; ++u) {
        if (!has[u]) continue;
        for (const WeightedEdge& e : out_edges[u]) {
          double v = Extend(options.along, dist[u], e.w);
          if (!has[e.to] || Better(options.across, v, dist[e.to])) {
            dist[e.to] = v;
            has[e.to] = true;
            changed = true;
          }
        }
      }
      if (changed && unbounded_possible && round > n) {
        return Status::CycleInPath(
            "path summarization is unbounded: an improving cycle is "
            "reachable (the along=sum/count objective requires an acyclic "
            "reachable subgraph)");
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (!has[v]) continue;
      Value val = (any_double || options.along == AggKind::kAvg)
                      ? Value::Double(dist[v])
                      : Value::Int(static_cast<int64_t>(dist[v]));
      result.Insert(Tuple{values[s], values[v], val});
    }
  }
  return result;
}

}  // namespace graphlog::aggr
