#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/json.h"

namespace graphlog::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Histogram::Observe(int64_t value) {
  if (count == 0) {
    min = max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  int width = 0;
  for (uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value); v != 0;
       v >>= 1) {
    ++width;
  }
  ++buckets[width];
}

void Metrics::Count(std::string_view name, uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void Metrics::Observe(std::string_view name, int64_t value) {
  histograms_[std::string(name)].Observe(value);
}

void Metrics::SetHistogram(std::string_view name, Histogram h) {
  histograms_[std::string(name)] = std::move(h);
}

// ---------------------------------------------------------------------------
// Tracer

Span* Tracer::Current() {
  if (stack_.empty()) return nullptr;
  Span* s = &roots_[stack_[0]];
  for (size_t k = 1; k < stack_.size(); ++k) s = &s->children[stack_[k]];
  return s;
}

void Tracer::BeginSpan(std::string_view name) {
  Span span;
  span.name = std::string(name);
  span.start_ns = NowNs();
  Span* cur = Current();
  if (cur == nullptr) {
    stack_.push_back(roots_.size());
    roots_.push_back(std::move(span));
  } else {
    stack_.push_back(cur->children.size());
    cur->children.push_back(std::move(span));
  }
}

void Tracer::EndSpan() {
  Span* cur = Current();
  if (cur == nullptr) return;
  cur->end_ns = NowNs();
  stack_.pop_back();
}

void Tracer::AddAttr(std::string_view key, int64_t value) {
  Span* cur = Current();
  if (cur != nullptr) cur->attrs.emplace_back(std::string(key), value);
}

void Tracer::AddNote(std::string_view key, std::string_view value) {
  Span* cur = Current();
  if (cur != nullptr) {
    cur->notes.emplace_back(std::string(key), std::string(value));
  }
}

void Tracer::AddTiming(std::string_view key, int64_t value) {
  Span* cur = Current();
  if (cur != nullptr) cur->timings.emplace_back(std::string(key), value);
}

TraceReport Tracer::TakeReport() {
  while (!stack_.empty()) EndSpan();
  TraceReport report;
  report.spans = std::move(roots_);
  report.metrics = std::move(metrics_);
  roots_.clear();
  metrics_ = Metrics();
  return report;
}

// ---------------------------------------------------------------------------
// JSON export

namespace {

using json::AppendInt;
using json::AppendString;

template <typename V, typename AppendValue>
void AppendPairArray(std::string* out, const char* key,
                     const std::vector<std::pair<std::string, V>>& pairs,
                     const AppendValue& append_value) {
  if (pairs.empty()) return;
  *out += ",\"";
  *out += key;
  *out += "\":[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('[');
    AppendString(out, pairs[i].first);
    out->push_back(',');
    append_value(out, pairs[i].second);
    out->push_back(']');
  }
  out->push_back(']');
}

void AppendSpan(std::string* out, const Span& span, bool include_timings) {
  *out += "{\"name\":";
  AppendString(out, span.name);
  if (include_timings) {
    *out += ",\"duration_ns\":";
    AppendInt(out, static_cast<int64_t>(span.duration_ns()));
  }
  AppendPairArray(out, "attrs", span.attrs, AppendInt);
  AppendPairArray(out, "notes", span.notes,
                  [](std::string* o, const std::string& v) {
                    AppendString(o, v);
                  });
  if (include_timings) {
    AppendPairArray(out, "timings", span.timings, AppendInt);
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendSpan(out, span.children[i], include_timings);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string TraceReport::ToJson(bool include_timings) const {
  std::string out = "{\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendSpan(&out, spans[i], include_timings);
  }
  out += "],\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) out.push_back(',');
    first = false;
    AppendString(&out, name);
    out.push_back(':');
    AppendInt(&out, static_cast<int64_t>(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) out.push_back(',');
    first = false;
    AppendString(&out, name);
    out += ":{\"count\":";
    AppendInt(&out, static_cast<int64_t>(h.count));
    out += ",\"sum\":";
    AppendInt(&out, h.sum);
    out += ",\"min\":";
    AppendInt(&out, h.min);
    out += ",\"max\":";
    AppendInt(&out, h.max);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [width, n] : h.buckets) {
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out.push_back('[');
      AppendInt(&out, width);
      out.push_back(',');
      AppendInt(&out, static_cast<int64_t>(n));
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}}";
  return out;
}

// ---------------------------------------------------------------------------
// JSON import (round-trip support)
//
// The grammar lives here; the shared json::Reader (obs/json.h) supplies
// the terminals (strings, integers, punctuation).

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : r_(text) {}

  Result<TraceReport> ParseReport() {
    TraceReport report;
    GRAPHLOG_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) GRAPHLOG_RETURN_NOT_OK(Expect(','));
      first = false;
      GRAPHLOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      GRAPHLOG_RETURN_NOT_OK(Expect(':'));
      if (key == "spans") {
        GRAPHLOG_RETURN_NOT_OK(Expect('['));
        while (!TryConsume(']')) {
          if (!report.spans.empty()) GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_ASSIGN_OR_RETURN(Span s, ParseSpan());
          report.spans.push_back(std::move(s));
        }
      } else if (key == "metrics") {
        GRAPHLOG_RETURN_NOT_OK(ParseMetrics(&report.metrics));
      } else {
        return Err("unknown report key '" + key + "'");
      }
    }
    return report;
  }

 private:
  Status Err(std::string msg) const {
    return r_.Err("trace JSON: " + std::move(msg));
  }
  bool TryConsume(char c) { return r_.TryConsume(c); }
  Status Expect(char c) { return r_.Expect(c); }
  Result<std::string> ParseString() { return r_.ParseString(); }
  Result<int64_t> ParseInt() { return r_.ParseInt(); }

  /// Parses `[["key", value], ...]` with integer values.
  Status ParseIntPairs(std::vector<std::pair<std::string, int64_t>>* out) {
    GRAPHLOG_RETURN_NOT_OK(Expect('['));
    while (!TryConsume(']')) {
      if (!out->empty()) GRAPHLOG_RETURN_NOT_OK(Expect(','));
      GRAPHLOG_RETURN_NOT_OK(Expect('['));
      GRAPHLOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      GRAPHLOG_RETURN_NOT_OK(Expect(','));
      GRAPHLOG_ASSIGN_OR_RETURN(int64_t value, ParseInt());
      GRAPHLOG_RETURN_NOT_OK(Expect(']'));
      out->emplace_back(std::move(key), value);
    }
    return Status::OK();
  }

  Result<Span> ParseSpan() {
    Span span;
    GRAPHLOG_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) GRAPHLOG_RETURN_NOT_OK(Expect(','));
      first = false;
      GRAPHLOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      GRAPHLOG_RETURN_NOT_OK(Expect(':'));
      if (key == "name") {
        GRAPHLOG_ASSIGN_OR_RETURN(span.name, ParseString());
      } else if (key == "duration_ns") {
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t d, ParseInt());
        span.start_ns = 0;
        span.end_ns = static_cast<uint64_t>(d);
      } else if (key == "attrs") {
        GRAPHLOG_RETURN_NOT_OK(ParseIntPairs(&span.attrs));
      } else if (key == "timings") {
        GRAPHLOG_RETURN_NOT_OK(ParseIntPairs(&span.timings));
      } else if (key == "notes") {
        GRAPHLOG_RETURN_NOT_OK(Expect('['));
        while (!TryConsume(']')) {
          if (!span.notes.empty()) GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_RETURN_NOT_OK(Expect('['));
          GRAPHLOG_ASSIGN_OR_RETURN(std::string k, ParseString());
          GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_ASSIGN_OR_RETURN(std::string v, ParseString());
          GRAPHLOG_RETURN_NOT_OK(Expect(']'));
          span.notes.emplace_back(std::move(k), std::move(v));
        }
      } else if (key == "children") {
        GRAPHLOG_RETURN_NOT_OK(Expect('['));
        while (!TryConsume(']')) {
          if (!span.children.empty()) GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_ASSIGN_OR_RETURN(Span child, ParseSpan());
          span.children.push_back(std::move(child));
        }
      } else {
        return Err("unknown span key '" + key + "'");
      }
    }
    return span;
  }

  Status ParseMetrics(Metrics* metrics) {
    GRAPHLOG_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) GRAPHLOG_RETURN_NOT_OK(Expect(','));
      first = false;
      GRAPHLOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      GRAPHLOG_RETURN_NOT_OK(Expect(':'));
      GRAPHLOG_RETURN_NOT_OK(Expect('{'));
      bool efirst = true;
      while (!TryConsume('}')) {
        if (!efirst) GRAPHLOG_RETURN_NOT_OK(Expect(','));
        efirst = false;
        GRAPHLOG_ASSIGN_OR_RETURN(std::string name, ParseString());
        GRAPHLOG_RETURN_NOT_OK(Expect(':'));
        if (key == "counters") {
          GRAPHLOG_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          metrics->Count(name, static_cast<uint64_t>(v));
        } else if (key == "histograms") {
          GRAPHLOG_RETURN_NOT_OK(ParseHistogram(name, metrics));
        } else {
          return Err("unknown metrics key '" + key + "'");
        }
      }
    }
    return Status::OK();
  }

  Status ParseHistogram(const std::string& name, Metrics* metrics) {
    // Reconstruct the histogram field by field: Observe() cannot replay
    // the original values, so write the aggregate directly.
    Histogram h;
    GRAPHLOG_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) GRAPHLOG_RETURN_NOT_OK(Expect(','));
      first = false;
      GRAPHLOG_ASSIGN_OR_RETURN(std::string field, ParseString());
      GRAPHLOG_RETURN_NOT_OK(Expect(':'));
      if (field == "count") {
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t v, ParseInt());
        h.count = static_cast<uint64_t>(v);
      } else if (field == "sum") {
        GRAPHLOG_ASSIGN_OR_RETURN(h.sum, ParseInt());
      } else if (field == "min") {
        GRAPHLOG_ASSIGN_OR_RETURN(h.min, ParseInt());
      } else if (field == "max") {
        GRAPHLOG_ASSIGN_OR_RETURN(h.max, ParseInt());
      } else if (field == "buckets") {
        GRAPHLOG_RETURN_NOT_OK(Expect('['));
        while (!TryConsume(']')) {
          if (!h.buckets.empty()) GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_RETURN_NOT_OK(Expect('['));
          GRAPHLOG_ASSIGN_OR_RETURN(int64_t width, ParseInt());
          GRAPHLOG_RETURN_NOT_OK(Expect(','));
          GRAPHLOG_ASSIGN_OR_RETURN(int64_t n, ParseInt());
          GRAPHLOG_RETURN_NOT_OK(Expect(']'));
          h.buckets[static_cast<int>(width)] = static_cast<uint64_t>(n);
        }
      } else {
        return Err("unknown histogram key '" + field + "'");
      }
    }
    metrics->SetHistogram(name, std::move(h));
    return Status::OK();
  }

  json::Reader r_;
};

}  // namespace

Result<TraceReport> TraceReport::FromJson(std::string_view json) {
  JsonParser parser(json);
  return parser.ParseReport();
}

// ---------------------------------------------------------------------------
// Text report

namespace {

void AppendDuration(std::string* out, uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  }
  *out += buf;
}

void AppendSpanText(std::string* out, const Span& span, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  if (span.end_ns != 0) {
    *out += "  [";
    AppendDuration(out, span.duration_ns());
    *out += "]";
  }
  for (const auto& [k, v] : span.attrs) {
    *out += "  " + k + "=" + std::to_string(v);
  }
  out->push_back('\n');
  for (const auto& [k, v] : span.notes) {
    out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
    *out += "# " + k + ": " + v + "\n";
  }
  for (const Span& child : span.children) {
    AppendSpanText(out, child, depth + 1);
  }
}

}  // namespace

std::string TraceReport::ToText() const {
  std::string out;
  for (const Span& span : spans) AppendSpanText(&out, span, 0);
  if (!metrics.counters().empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : metrics.counters()) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (!metrics.histograms().empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : metrics.histograms()) {
      out += "  " + name + ": count=" + std::to_string(h.count) +
             " sum=" + std::to_string(h.sum) + " min=" + std::to_string(h.min) +
             " max=" + std::to_string(h.max) + "\n";
    }
  }
  return out;
}

}  // namespace graphlog::obs
