// Internal JSON helpers shared by the observability exporters.
//
// The trace (obs/trace.h) and metrics (obs/metrics.h) formats both emit a
// small JSON dialect — objects, arrays, ASCII strings with conservative
// escapes, and 64-bit integers — and both promise an exact round-trip
// (FromJson(x.ToJson())->ToJson() == x.ToJson()). This header carries the
// writer primitives and a recursive-descent Reader covering exactly that
// dialect so the two parsers cannot drift apart. Not a general JSON
// library; callers outside src/obs should treat the exports as opaque.

#ifndef GRAPHLOG_OBS_JSON_H_
#define GRAPHLOG_OBS_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/result.h"

namespace graphlog::obs::json {

/// \brief Appends `s` as a quoted JSON string (ASCII escapes only).
inline void AppendString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// \brief Appends `v` in decimal.
inline void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

/// \brief Recursive-descent reader for the dialect AppendString/AppendInt
/// produce. Callers drive the grammar themselves (Expect/TryConsume) and
/// use ParseString/ParseInt for terminals; Err() renders a ParseError with
/// the current offset.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  Status Err(std::string msg) const {
    return Status::ParseError(std::move(msg) + " at offset " +
                              std::to_string(pos_));
  }

  bool TryConsume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!TryConsume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Result<std::string> ParseString() {
    GRAPHLOG_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += h - 'A' + 10;
            } else {
              return Err("bad \\u escape");
            }
          }
          if (code > 0x7f) return Err("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    GRAPHLOG_RETURN_NOT_OK(Expect('"'));
    return out;
  }

  Result<int64_t> ParseInt() {
    SkipWs();
    bool neg = TryConsume('-');
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("expected integer");
    }
    int64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      v = v * 10 + (text_[pos_++] - '0');
    }
    return neg ? -v : v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace graphlog::obs::json

#endif  // GRAPHLOG_OBS_JSON_H_
