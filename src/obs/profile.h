// QueryProfile: plan-level execution profiling (EXPLAIN ANALYZE).
//
// Where EvalStats answers "how much work did the query do", the profile
// answers "where": per rule, per plan step (atom), and per fixpoint round
// it records how often each step ran, how many rows it passed downstream,
// how the planner's estimate compared to reality, and how many derived
// tuples the dedup layers rejected. graphlog::Run fills one into
// QueryResponse::profile when QueryOptions::observability.profile is set.
//
// Determinism contract — the same split the trace (obs/trace.h) and
// metrics layers use:
//
//   * The LOGICAL sections (rule/step/round counters, labels, estimates)
//     are bit-identical across num_threads AND across the columnar join
//     path being on or off: the engine accumulates them per
//     (task, partition) and merges in partition order, and the counting
//     rules in eval/compiled_rule.h reproduce exactly the serial
//     execution's counts. ToJson(false) projects only these sections.
//   * The PHYSICAL section (per-step CSR-vs-row-path served counts) and
//     the TIMINGS section (per-rule wall-clock) describe how the work was
//     executed, not what was computed; both are emitted only by
//     ToJson(true) / ToText(true).
//
// Dedup accounting: every rule firing either emits a novel tuple or is
// rejected. `dup_in_head` counts firings whose head tuple already existed
// when the round started (deterministic: the head relation is frozen per
// batch); `dup_in_round` counts duplicates first derived earlier in the
// same round. The per-site split between the engine's partition-local
// `seen` filter and the merge-phase drop varies with num_threads, but
// their sum — what this struct records — does not.

#ifndef GRAPHLOG_OBS_PROFILE_H_
#define GRAPHLOG_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphlog::obs {

/// \brief Execution counters for one plan step (one body atom / builtin).
struct StepProfile {
  /// Deterministic step label, e.g. "probe edge(0)" or "antijoin !blocked".
  std::string op;
  /// Planner estimate of rows one execution of this step matches, from
  /// the cardinality oracle at compile time (0 = no estimate: builtins,
  /// or the oracle was disabled).
  uint64_t estimated_rows = 0;
  /// Times the step was entered (probes issued for scan/probe steps).
  uint64_t invocations = 0;
  /// Rows this step passed downstream (matches surviving its filters).
  uint64_t rows_out = 0;
  /// Of `invocations`, how many were served by a CSR snapshot instead of
  /// the row path. PHYSICAL: differs between columnar on/off by design,
  /// so it is excluded from the logical JSON projection.
  uint64_t csr_invocations = 0;

  void Merge(const StepProfile& o) {
    invocations += o.invocations;
    rows_out += o.rows_out;
    csr_invocations += o.csr_invocations;
  }

  /// \brief Mean rows per invocation — the "actual" EXPLAIN ANALYZE
  /// compares against estimated_rows.
  double ActualRows() const {
    return invocations == 0
               ? 0.0
               : static_cast<double>(rows_out) / static_cast<double>(invocations);
  }
};

/// \brief Execution counters for one rule of the query's rule universe.
struct RuleProfile {
  std::string rule;  ///< the rule's text
  std::string plan;  ///< the chosen join plan (CompiledRule::PlanToString)
  uint64_t firings = 0;       ///< satisfying assignments enumerated
  uint64_t rows_emitted = 0;  ///< novel tuples this rule inserted
  uint64_t dup_in_head = 0;   ///< firings rejected: tuple pre-dated the round
  uint64_t dup_in_round = 0;  ///< firings rejected: duplicate within the round
  std::vector<StepProfile> steps;  ///< parallel to the compiled plan
  /// TIMINGS: wall-clock spent executing this rule's join fan-out,
  /// summed across lanes. Excluded from ToJson(false)/ToText(false).
  uint64_t wall_ns = 0;

  void Merge(const RuleProfile& o);
};

/// \brief One fixpoint round (or one-shot pass) of one stratum.
struct RoundProfile {
  int64_t graph = 0;    ///< query-graph index (0 for raw Datalog)
  int64_t stratum = 0;  ///< stratum index within the graph's program
  int64_t round = 0;    ///< round index within the stratum
  uint64_t delta_rows = 0;  ///< combined delta size at the round start
  uint64_t firings = 0;     ///< rule firings this round
  uint64_t derived = 0;     ///< novel tuples this round
};

/// \brief The full query profile: every rule (indexed like the provenance
/// rule universe, i.e. QueryStats::programs order) plus the round log.
struct QueryProfile {
  std::vector<RuleProfile> rules;
  std::vector<RoundProfile> rounds;

  bool empty() const { return rules.empty() && rounds.empty(); }

  /// \brief Appends one engine run's profile (rule indices shift by the
  /// current rule count — the API's rule_offset discipline — and its
  /// rounds are tagged with the next graph index).
  void AppendRun(const QueryProfile& run);

  /// \brief Folds another whole-query profile in, rule by rule (rule
  /// universes must match). Counters add; EvalStats::Merge discipline.
  void Merge(const QueryProfile& o);

  /// \brief JSON export. include_timings=false is the deterministic
  /// logical projection: byte-identical across num_threads and columnar
  /// on/off. Export-only (no parser) — embed verbatim where needed.
  std::string ToJson(bool include_timings = true) const;

  /// \brief The EXPLAIN ANALYZE rendering: per rule, each plan step with
  /// estimated vs actual rows and the miss factor (actual/estimated),
  /// the dedup breakdown, and the per-round delta log.
  std::string ToText(bool include_timings = true) const;

 private:
  int64_t graphs_ = 0;  ///< runs appended so far (next graph index)
};

}  // namespace graphlog::obs

#endif  // GRAPHLOG_OBS_PROFILE_H_
