// Slow-query log: a bounded in-memory ring of outlier queries.
//
// When graphlog::Run() finishes a query whose wall-clock time exceeds
// QueryOptions::observability.slow_query_threshold_ns, it captures the
// request text, the EXPLAIN rendering (forced on for armed queries so the
// plan that was slow is the plan on record), the headline statistics, and
// — when tracing was on — the full trace JSON into the configured
// SlowQueryLog. The ring holds the most recent `capacity` records;
// recording is mutex-serialized (a slow query is by definition not a hot
// path) and the whole log dumps as one JSON document.

#ifndef GRAPHLOG_OBS_SLOW_QUERY_LOG_H_
#define GRAPHLOG_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace graphlog::obs {

/// \brief One captured slow query.
struct SlowQueryRecord {
  uint64_t sequence = 0;      ///< 1-based across the log's lifetime
  std::string language;       ///< "graphlog" | "datalog"
  std::string text;           ///< request text ("<graphical>" for pre-parsed)
  /// Attribution: the (detached) session that ran the query and the
  /// server epoch it ran under. Empty/zero for attached sessions and raw
  /// graphlog::Run calls, which run directly against the caller's
  /// database.
  std::string session;
  uint64_t server_epoch = 0;
  uint64_t duration_ns = 0;
  uint64_t threshold_ns = 0;  ///< the threshold that tripped
  std::string error;          ///< non-empty when the query failed
  bool cache_hit = false;        ///< served from the result cache
  bool served_from_view = false; ///< answered from a materialized view
  std::string explain;        ///< EXPLAIN rendering at execution time
  std::string trace_json;     ///< full trace (only if tracing was on)
  std::string profile_json;   ///< EXPLAIN ANALYZE profile (if profiling)
  // Headline stats (gl::QueryStats projection).
  uint64_t tuples_derived = 0;
  uint64_t rule_firings = 0;
  uint64_t iterations = 0;
  uint64_t result_tuples = 0;
  uint64_t peak_delta_rows = 0;
  uint64_t peak_delta_bytes = 0;

  std::string ToJson() const;
};

/// \brief Thread-safe bounded ring of SlowQueryRecords.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// \brief Appends `rec` (assigning its sequence number), evicting the
  /// oldest record when full.
  void Record(SlowQueryRecord rec);

  /// \brief Oldest-to-newest copy of the retained records.
  std::vector<SlowQueryRecord> Entries() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// \brief Total records ever recorded, including evicted ones.
  uint64_t total_recorded() const;

  void Clear();

  /// \brief The whole log as one JSON document:
  /// {"capacity":N,"total_recorded":N,"entries":[...oldest first...]}.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryRecord> ring_;
  uint64_t total_ = 0;
};

}  // namespace graphlog::obs

#endif  // GRAPHLOG_OBS_SLOW_QUERY_LOG_H_
