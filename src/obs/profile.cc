#include "obs/profile.h"

#include <cstdio>

#include "obs/json.h"

namespace graphlog::obs {

namespace {

void AppendFixed(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  *out += buf;
}

}  // namespace

void RuleProfile::Merge(const RuleProfile& o) {
  if (rule.empty()) rule = o.rule;
  if (plan.empty()) plan = o.plan;
  firings += o.firings;
  rows_emitted += o.rows_emitted;
  dup_in_head += o.dup_in_head;
  dup_in_round += o.dup_in_round;
  wall_ns += o.wall_ns;
  if (steps.size() < o.steps.size()) steps.resize(o.steps.size());
  for (size_t i = 0; i < o.steps.size(); ++i) {
    if (steps[i].op.empty()) {
      steps[i].op = o.steps[i].op;
      steps[i].estimated_rows = o.steps[i].estimated_rows;
    }
    steps[i].Merge(o.steps[i]);
  }
}

void QueryProfile::AppendRun(const QueryProfile& run) {
  rules.insert(rules.end(), run.rules.begin(), run.rules.end());
  for (RoundProfile r : run.rounds) {
    r.graph = graphs_;
    rounds.push_back(r);
  }
  ++graphs_;
}

void QueryProfile::Merge(const QueryProfile& o) {
  if (rules.size() < o.rules.size()) rules.resize(o.rules.size());
  for (size_t i = 0; i < o.rules.size(); ++i) rules[i].Merge(o.rules[i]);
  rounds.insert(rounds.end(), o.rounds.begin(), o.rounds.end());
  if (o.graphs_ > graphs_) graphs_ = o.graphs_;
}

std::string QueryProfile::ToJson(bool include_timings) const {
  std::string out = "{\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleProfile& r = rules[i];
    if (i > 0) out.push_back(',');
    out += "{\"rule\":";
    json::AppendString(&out, r.rule);
    out += ",\"plan\":";
    json::AppendString(&out, r.plan);
    out += ",\"firings\":";
    json::AppendInt(&out, static_cast<int64_t>(r.firings));
    out += ",\"rows_emitted\":";
    json::AppendInt(&out, static_cast<int64_t>(r.rows_emitted));
    out += ",\"dup_in_head\":";
    json::AppendInt(&out, static_cast<int64_t>(r.dup_in_head));
    out += ",\"dup_in_round\":";
    json::AppendInt(&out, static_cast<int64_t>(r.dup_in_round));
    out += ",\"steps\":[";
    for (size_t k = 0; k < r.steps.size(); ++k) {
      const StepProfile& s = r.steps[k];
      if (k > 0) out.push_back(',');
      out += "{\"op\":";
      json::AppendString(&out, s.op);
      out += ",\"estimated_rows\":";
      json::AppendInt(&out, static_cast<int64_t>(s.estimated_rows));
      out += ",\"invocations\":";
      json::AppendInt(&out, static_cast<int64_t>(s.invocations));
      out += ",\"rows_out\":";
      json::AppendInt(&out, static_cast<int64_t>(s.rows_out));
      if (include_timings) {
        // PHYSICAL: how the step was served, not what it computed.
        out += ",\"csr_invocations\":";
        json::AppendInt(&out, static_cast<int64_t>(s.csr_invocations));
      }
      out.push_back('}');
    }
    out.push_back(']');
    if (include_timings) {
      out += ",\"wall_ns\":";
      json::AppendInt(&out, static_cast<int64_t>(r.wall_ns));
    }
    out.push_back('}');
  }
  out += "],\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const RoundProfile& r = rounds[i];
    if (i > 0) out.push_back(',');
    out += "{\"graph\":";
    json::AppendInt(&out, r.graph);
    out += ",\"stratum\":";
    json::AppendInt(&out, r.stratum);
    out += ",\"round\":";
    json::AppendInt(&out, r.round);
    out += ",\"delta_rows\":";
    json::AppendInt(&out, static_cast<int64_t>(r.delta_rows));
    out += ",\"firings\":";
    json::AppendInt(&out, static_cast<int64_t>(r.firings));
    out += ",\"derived\":";
    json::AppendInt(&out, static_cast<int64_t>(r.derived));
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string QueryProfile::ToText(bool include_timings) const {
  std::string out = "EXPLAIN ANALYZE\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleProfile& r = rules[i];
    out += "rule [" + std::to_string(i) + "] " + r.rule + "\n";
    out += "  plan: " + r.plan + "\n";
    out += "  firings=" + std::to_string(r.firings) +
           " emitted=" + std::to_string(r.rows_emitted) +
           " dup_head=" + std::to_string(r.dup_in_head) +
           " dup_round=" + std::to_string(r.dup_in_round);
    if (include_timings) {
      out += " wall_us=" + std::to_string(r.wall_ns / 1000);
    }
    out.push_back('\n');
    for (size_t k = 0; k < r.steps.size(); ++k) {
      const StepProfile& s = r.steps[k];
      out += "    step " + std::to_string(k) + ": " + s.op + "  est=";
      out += std::to_string(s.estimated_rows);
      out += " actual=";
      AppendFixed(&out, s.ActualRows());
      // Miss factor: how far reality landed from the estimate. ">=1x"
      // means the planner undercounted.
      out += " miss=";
      if (s.estimated_rows == 0 || s.invocations == 0) {
        out += "-";
      } else {
        AppendFixed(&out,
                    s.ActualRows() / static_cast<double>(s.estimated_rows));
        out.push_back('x');
      }
      out += " probes=" + std::to_string(s.invocations) +
             " rows=" + std::to_string(s.rows_out);
      if (include_timings && s.csr_invocations > 0) {
        out += " csr=" + std::to_string(s.csr_invocations) + "/" +
               std::to_string(s.invocations);
      }
      out.push_back('\n');
    }
  }
  if (!rounds.empty()) out += "rounds:\n";
  for (const RoundProfile& r : rounds) {
    out += "  graph " + std::to_string(r.graph) + " stratum " +
           std::to_string(r.stratum) + " round " + std::to_string(r.round) +
           ": delta=" + std::to_string(r.delta_rows) +
           " firings=" + std::to_string(r.firings) +
           " derived=" + std::to_string(r.derived) + "\n";
  }
  return out;
}

}  // namespace graphlog::obs
