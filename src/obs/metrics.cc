#include "obs/metrics.h"

#include <utility>
#include <vector>

#include "obs/json.h"

namespace graphlog::obs {

// ---------------------------------------------------------------------------
// Registry

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(std::string(name));
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramCell* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramCell>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

/// Wall-clock instruments carry the `_ns` suffix by convention; the
/// deterministic projection drops them.
bool IsTimingName(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ns";
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  *out += "{\"count\":";
  json::AppendInt(out, static_cast<int64_t>(h.count));
  *out += ",\"sum\":";
  json::AppendInt(out, h.sum);
  *out += ",\"min\":";
  json::AppendInt(out, h.min);
  *out += ",\"max\":";
  json::AppendInt(out, h.max);
  *out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [width, n] : h.buckets) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('[');
    json::AppendInt(out, width);
    out->push_back(',');
    json::AppendInt(out, static_cast<int64_t>(n));
    out->push_back(']');
  }
  *out += "]}";
}

/// Prometheus metric name: "graphlog_" + name with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "graphlog_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson(bool include_timings) const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!include_timings && IsTimingName(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    json::AppendString(&out, name);
    out.push_back(':');
    json::AppendInt(&out, static_cast<int64_t>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!include_timings && IsTimingName(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    json::AppendString(&out, name);
    out.push_back(':');
    json::AppendInt(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!include_timings && IsTimingName(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    json::AppendString(&out, name);
    out.push_back(':');
    AppendHistogramJson(&out, h);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " ";
    json::AppendInt(&out, static_cast<int64_t>(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " ";
    json::AppendInt(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    // Power-of-two buckets become cumulative `le` buckets: values of bit
    // width w lie in [2^(w-1), 2^w - 1] (width 0 is exactly 0), so the
    // inclusive upper bound of width w is 2^w - 1.
    uint64_t cumulative = 0;
    for (const auto& [width, n] : h.buckets) {
      cumulative += n;
      const uint64_t le =
          width >= 63 ? UINT64_MAX : (uint64_t{1} << width) - 1;
      out += pname + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + std::to_string(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : histograms) {
      out += "  " + name + ": count=" + std::to_string(h.count) +
             " sum=" + std::to_string(h.sum) +
             " min=" + std::to_string(h.min) +
             " max=" + std::to_string(h.max) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON import

namespace {

Status ParseSnapshotHistogram(json::Reader* r, Histogram* h) {
  GRAPHLOG_RETURN_NOT_OK(r->Expect('{'));
  bool first = true;
  while (!r->TryConsume('}')) {
    if (!first) GRAPHLOG_RETURN_NOT_OK(r->Expect(','));
    first = false;
    GRAPHLOG_ASSIGN_OR_RETURN(std::string field, r->ParseString());
    GRAPHLOG_RETURN_NOT_OK(r->Expect(':'));
    if (field == "count") {
      GRAPHLOG_ASSIGN_OR_RETURN(int64_t v, r->ParseInt());
      h->count = static_cast<uint64_t>(v);
    } else if (field == "sum") {
      GRAPHLOG_ASSIGN_OR_RETURN(h->sum, r->ParseInt());
    } else if (field == "min") {
      GRAPHLOG_ASSIGN_OR_RETURN(h->min, r->ParseInt());
    } else if (field == "max") {
      GRAPHLOG_ASSIGN_OR_RETURN(h->max, r->ParseInt());
    } else if (field == "buckets") {
      GRAPHLOG_RETURN_NOT_OK(r->Expect('['));
      while (!r->TryConsume(']')) {
        if (!h->buckets.empty()) GRAPHLOG_RETURN_NOT_OK(r->Expect(','));
        GRAPHLOG_RETURN_NOT_OK(r->Expect('['));
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t width, r->ParseInt());
        GRAPHLOG_RETURN_NOT_OK(r->Expect(','));
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t n, r->ParseInt());
        GRAPHLOG_RETURN_NOT_OK(r->Expect(']'));
        h->buckets[static_cast<int>(width)] = static_cast<uint64_t>(n);
      }
    } else {
      return r->Err("metrics JSON: unknown histogram key '" + field + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view text) {
  json::Reader r(text);
  MetricsSnapshot snap;
  GRAPHLOG_RETURN_NOT_OK(r.Expect('{'));
  bool first = true;
  while (!r.TryConsume('}')) {
    if (!first) GRAPHLOG_RETURN_NOT_OK(r.Expect(','));
    first = false;
    GRAPHLOG_ASSIGN_OR_RETURN(std::string family, r.ParseString());
    GRAPHLOG_RETURN_NOT_OK(r.Expect(':'));
    GRAPHLOG_RETURN_NOT_OK(r.Expect('{'));
    bool efirst = true;
    while (!r.TryConsume('}')) {
      if (!efirst) GRAPHLOG_RETURN_NOT_OK(r.Expect(','));
      efirst = false;
      GRAPHLOG_ASSIGN_OR_RETURN(std::string name, r.ParseString());
      GRAPHLOG_RETURN_NOT_OK(r.Expect(':'));
      if (family == "counters") {
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t v, r.ParseInt());
        snap.counters[std::move(name)] = static_cast<uint64_t>(v);
      } else if (family == "gauges") {
        GRAPHLOG_ASSIGN_OR_RETURN(int64_t v, r.ParseInt());
        snap.gauges[std::move(name)] = v;
      } else if (family == "histograms") {
        Histogram h;
        GRAPHLOG_RETURN_NOT_OK(ParseSnapshotHistogram(&r, &h));
        snap.histograms[std::move(name)] = std::move(h);
      } else {
        return r.Err("metrics JSON: unknown family '" + family + "'");
      }
    }
  }
  return snap;
}

}  // namespace graphlog::obs
