// Process-wide metrics: named counters, gauges, and histograms that
// outlive any single query.
//
// The per-run obs::Metrics of trace.h answers "what did *this* evaluation
// do"; a long-lived GraphLog service additionally needs the cumulative
// view — how many rule firings since start, how much memory each relation
// holds, how the fixpoint-round distribution looks across the whole
// workload. MetricsRegistry is that layer: instruments are registered once
// by name, updated through stable handles, and snapshotted on demand.
//
// Design constraints:
//   * Cheap, thread-safe updates. Counter/Gauge are single relaxed
//     atomics; Histogram cells take a per-cell mutex (observations are
//     per-round, not per-tuple, on every hot path). Registration — the
//     only map lookup — happens once per instrumentation site; callers
//     cache the returned handle, so a disabled metrics path stays a
//     null-pointer test exactly like a disabled Tracer.
//   * Deterministic snapshots. A MetricsSnapshot orders every family by
//     name, and its JSON export round-trips through FromJson like the
//     trace format. Instruments whose name ends in "_ns" are wall-clock
//     by convention; ToJson(include_timings=false) omits them, so the
//     structural projection of a snapshot is byte-identical across
//     num_threads settings (tests/metrics_test.cc).
//   * Two exporters. ToPrometheus() renders the text exposition format
//     (power-of-two histogram buckets become cumulative `le` buckets);
//     ToJson()/FromJson() round-trip the full snapshot.

#ifndef GRAPHLOG_OBS_METRICS_H_
#define GRAPHLOG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/trace.h"

namespace graphlog::obs {

/// \brief A monotonically increasing counter (relaxed atomic).
class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief A settable signed level (relaxed atomic).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief A thread-safe power-of-two histogram cell (see obs::Histogram
/// for the bucketing contract).
class HistogramCell {
 public:
  void Observe(int64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Observe(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    h_ = Histogram();
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
};

/// \brief A point-in-time copy of every instrument, ordered by name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// \brief JSON export. Instruments named `*_ns` hold wall-clock data by
  /// convention; with `include_timings` false they are omitted, and the
  /// remaining structural snapshot is byte-identical across num_threads
  /// settings for the same workload.
  std::string ToJson(bool include_timings = true) const;

  /// \brief Parses a ToJson() document. Round-trips:
  /// FromJson(s.ToJson(t))->ToJson(t) == s.ToJson(t) for either t.
  static Result<MetricsSnapshot> FromJson(std::string_view json);

  /// \brief Prometheus text exposition. Metric names are sanitized
  /// ([^a-zA-Z0-9_] -> '_') and prefixed "graphlog_"; histograms emit
  /// cumulative `le`-bucket counts at the power-of-two boundaries.
  std::string ToPrometheus() const;

  /// \brief Human-readable listing (shell `.metrics`).
  std::string ToText() const;
};

/// \brief The registry: name -> instrument, with stable handle addresses.
///
/// Handles returned by counter()/gauge()/histogram() stay valid for the
/// registry's lifetime (instruments are heap-allocated and never removed;
/// Reset() zeroes values in place). Registration takes a mutex; updates
/// through handles are lock-free (counters/gauges) or per-cell locked
/// (histograms).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  HistogramCell* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// \brief Zeroes every instrument in place; outstanding handles remain
  /// valid. For tests and `.metrics reset`-style tooling.
  void Reset();

  /// \brief The process-wide registry a long-lived service exports from.
  /// Library code never reaches for this implicitly — callers opt in by
  /// passing it through QueryOptions/EvalOptions.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramCell>> histograms_;
};

}  // namespace graphlog::obs

#endif  // GRAPHLOG_OBS_METRICS_H_
