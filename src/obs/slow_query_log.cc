#include "obs/slow_query_log.h"

#include "obs/json.h"

namespace graphlog::obs {

std::string SlowQueryRecord::ToJson() const {
  std::string out = "{\"sequence\":";
  json::AppendInt(&out, static_cast<int64_t>(sequence));
  out += ",\"language\":";
  json::AppendString(&out, language);
  out += ",\"text\":";
  json::AppendString(&out, text);
  if (!session.empty()) {
    out += ",\"session\":";
    json::AppendString(&out, session);
    out += ",\"server_epoch\":";
    json::AppendInt(&out, static_cast<int64_t>(server_epoch));
  }
  out += ",\"duration_ns\":";
  json::AppendInt(&out, static_cast<int64_t>(duration_ns));
  out += ",\"threshold_ns\":";
  json::AppendInt(&out, static_cast<int64_t>(threshold_ns));
  if (!error.empty()) {
    out += ",\"error\":";
    json::AppendString(&out, error);
  }
  if (cache_hit) out += ",\"cache_hit\":true";
  if (served_from_view) out += ",\"served_from_view\":true";
  out += ",\"stats\":{\"tuples_derived\":";
  json::AppendInt(&out, static_cast<int64_t>(tuples_derived));
  out += ",\"rule_firings\":";
  json::AppendInt(&out, static_cast<int64_t>(rule_firings));
  out += ",\"iterations\":";
  json::AppendInt(&out, static_cast<int64_t>(iterations));
  out += ",\"result_tuples\":";
  json::AppendInt(&out, static_cast<int64_t>(result_tuples));
  out += ",\"peak_delta_rows\":";
  json::AppendInt(&out, static_cast<int64_t>(peak_delta_rows));
  out += ",\"peak_delta_bytes\":";
  json::AppendInt(&out, static_cast<int64_t>(peak_delta_bytes));
  out += "}";
  if (!explain.empty()) {
    out += ",\"explain\":";
    json::AppendString(&out, explain);
  }
  if (!trace_json.empty()) {
    // Already JSON — embed verbatim rather than re-escaping.
    out += ",\"trace\":" + trace_json;
  }
  if (!profile_json.empty()) {
    out += ",\"profile\":" + profile_json;
  }
  out += "}";
  return out;
}

void SlowQueryLog::Record(SlowQueryRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.sequence = ++total_;
  ring_.push_back(std::move(rec));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::string SlowQueryLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"capacity\":";
  json::AppendInt(&out, static_cast<int64_t>(capacity_));
  out += ",\"total_recorded\":";
  json::AppendInt(&out, static_cast<int64_t>(total_));
  out += ",\"entries\":[";
  bool first = true;
  for (const SlowQueryRecord& rec : ring_) {
    if (!first) out.push_back(',');
    first = false;
    out += rec.ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace graphlog::obs
