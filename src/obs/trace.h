// Pipeline observability: hierarchical tracing spans and typed metrics.
//
// The measurement substrate behind the unified QueryRequest/QueryResponse
// API (graphlog/api.h): every pipeline stage — parse, validation,
// lambda-translation, stratification, per-stratum fixpoint rounds, TC and
// RPQ kernels, path summarization — opens a Span, annotates it with what
// happened, and closes it. The resulting tree plus a flat set of
// counters/histograms is exported as a TraceReport (text or JSON).
//
// Design constraints:
//   * Near-zero overhead when disabled: every instrumentation site passes a
//     `Tracer*` that may be null, and SpanGuard/record helpers reduce to a
//     single pointer test in that case. No clock reads, no allocations.
//   * Deterministic across thread counts: span structure, attrs, notes, and
//     metrics depend only on the evaluation semantics (which PR 1 made
//     bit-identical across lane counts). Wall-clock data — span durations
//     and per-lane busy times — lives in dedicated fields that
//     ToJson(include_timings=false) omits, so the deterministic projection
//     of a report can be compared across num_threads settings byte for
//     byte (tests/obs_test.cc, tests/parallel_eval_test.cc).
//   * Single-threaded recording: spans are opened/closed and annotated only
//     from the coordinating thread. Worker lanes measure their own busy
//     time into per-lane slots that the coordinator folds into the open
//     span after the fork-join (see eval/engine.cc), keeping the tracer
//     free of synchronization.

#ifndef GRAPHLOG_OBS_TRACE_H_
#define GRAPHLOG_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace graphlog::obs {

/// \brief Monotonic clock reading in nanoseconds.
uint64_t NowNs();

/// \brief One node of the span tree.
struct Span {
  std::string name;
  uint64_t start_ns = 0;  ///< NowNs() at open (0 on imported/deterministic)
  uint64_t end_ns = 0;    ///< NowNs() at close
  /// Structural integer annotations (delta sizes, rule counts, ...), in
  /// append order. Deterministic across thread counts.
  std::vector<std::pair<std::string, int64_t>> attrs;
  /// Structural string annotations (join plans, algorithm names, ...).
  std::vector<std::pair<std::string, std::string>> notes;
  /// Wall-clock measurements beyond start/end (per-lane busy ns, resolved
  /// lane count). Excluded from the deterministic export.
  std::vector<std::pair<std::string, int64_t>> timings;
  std::vector<Span> children;

  uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// \brief A power-of-two-bucketed histogram of non-negative integers.
///
/// Bucket i counts values whose bit width is i (bucket 0 counts zeros),
/// i.e. value v lands in bucket floor(log2(v)) + 1. Exact counts/sums and
/// fixed boundaries keep the export deterministic.
struct Histogram {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::map<int, uint64_t> buckets;  ///< bit width -> observation count

  void Observe(int64_t value);
};

/// \brief Flat named counters and histograms for one run.
class Metrics {
 public:
  void Count(std::string_view name, uint64_t delta);
  void Observe(std::string_view name, int64_t value);
  /// \brief Installs a fully-built histogram (JSON import path).
  void SetHistogram(std::string_view name, Histogram h);

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  bool empty() const { return counters_.empty() && histograms_.empty(); }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// \brief A finished trace: the span forest plus the run's metrics.
struct TraceReport {
  std::vector<Span> spans;  ///< top-level spans in open order
  Metrics metrics;

  bool empty() const { return spans.empty() && metrics.empty(); }

  /// \brief JSON export. With `include_timings` false the output contains
  /// only the deterministic projection (no durations, no per-lane times):
  /// byte-identical across num_threads settings for the same query.
  std::string ToJson(bool include_timings = true) const;

  /// \brief Parses a ToJson() document back into a report. Round-trips:
  /// FromJson(r.ToJson(t))->ToJson(t) == r.ToJson(t) for either t.
  static Result<TraceReport> FromJson(std::string_view json);

  /// \brief Human-readable indented tree with durations and counters.
  std::string ToText() const;
};

/// \brief Records one run's span tree and metrics.
///
/// Spans nest by open/close order on the recording thread. All methods are
/// single-threaded by design (see file comment).
class Tracer {
 public:
  /// \brief Opens a child span of the innermost open span.
  void BeginSpan(std::string_view name);
  /// \brief Closes the innermost open span.
  void EndSpan();

  /// \brief Annotates the innermost open span; no-ops without one.
  void AddAttr(std::string_view key, int64_t value);
  void AddNote(std::string_view key, std::string_view value);
  void AddTiming(std::string_view key, int64_t value);

  Metrics& metrics() { return metrics_; }

  /// \brief Finishes the trace (closing any still-open spans) and returns
  /// the report. The tracer is reset and may be reused.
  TraceReport TakeReport();

 private:
  std::vector<Span> roots_;
  /// Path of open spans as child indices: stack_[0] indexes roots_,
  /// stack_[k] indexes the children of the span at stack_[k-1]. Indices
  /// stay valid across child-vector reallocation, unlike raw pointers.
  std::vector<size_t> stack_;
  Metrics metrics_;

  Span* Current();
};

/// \brief RAII span: opens on construction, closes on destruction. All
/// operations are single-pointer-test no-ops when `tracer` is null, which
/// is the disabled-tracing hot path.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->EndSpan();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool enabled() const { return tracer_ != nullptr; }
  void AddAttr(std::string_view key, int64_t value) {
    if (tracer_ != nullptr) tracer_->AddAttr(key, value);
  }
  void AddNote(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->AddNote(key, value);
  }
  void AddTiming(std::string_view key, int64_t value) {
    if (tracer_ != nullptr) tracer_->AddTiming(key, value);
  }

 private:
  Tracer* tracer_;
};

}  // namespace graphlog::obs

#endif  // GRAPHLOG_OBS_TRACE_H_
