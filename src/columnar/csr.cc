#include "columnar/csr.h"

#include <algorithm>

#include "obs/trace.h"

namespace graphlog::columnar {

using storage::Relation;
using storage::Tuple;

bool Csr::HasEdge(uint32_t u, uint32_t t) const {
  const auto span = Sorted(u);
  return std::binary_search(span.begin(), span.end(), t);
}

size_t Csr::MemoryBytes() const {
  size_t bytes = values.size() * sizeof(Value);
  bytes += ids.size() * (sizeof(Value) + sizeof(uint32_t) +
                         2 * sizeof(void*));
  bytes += (fwd_offsets.size() + rev_offsets.size() +
            sorted_offsets.size()) *
           sizeof(uint32_t);
  bytes += (fwd_targets.size() + rev_sources.size() +
            sorted_targets.size()) *
           sizeof(uint32_t);
  return bytes;
}

Result<Csr> BuildCsr(const Relation& rel, obs::MetricsRegistry* metrics,
                     const gov::GovernorContext* governor) {
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(governor, "csr.build"));
  if (rel.arity() != 2) {
    return Status::InvalidArgument(
        "BuildCsr: relation has arity " + std::to_string(rel.arity()) +
        ", want 2");
  }
  const uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;

  Csr csr;
  csr.source_uid = rel.uid();
  csr.source_data_generation = rel.data_generation();
  csr.source_size = rel.size();

  const std::vector<Tuple>& rows = rel.rows();
  const auto n_edges = static_cast<uint32_t>(rows.size());
  csr.ids.reserve(rows.size());
  auto intern = [&csr](const Value& v) -> uint32_t {
    auto [it, inserted] =
        csr.ids.emplace(v, static_cast<uint32_t>(csr.values.size()));
    if (inserted) csr.values.push_back(v);
    return it->second;
  };
  // Pass 1: intern both columns in row order (deterministic dense ids)
  // and remember the endpoints so pass 2 never rehashes.
  std::vector<uint32_t> src(n_edges), dst(n_edges);
  for (uint32_t r = 0; r < n_edges; ++r) {
    src[r] = intern(rows[r][0]);
    dst[r] = intern(rows[r][1]);
  }
  const uint32_t n = csr.num_nodes();

  // Pass 2: counting sort into both adjacency directions. Filling in
  // ascending row order keeps every span in row insertion order — the
  // posting-list order of the row engine's hash indexes.
  csr.fwd_offsets.assign(n + 1, 0);
  csr.rev_offsets.assign(n + 1, 0);
  for (uint32_t r = 0; r < n_edges; ++r) {
    ++csr.fwd_offsets[src[r] + 1];
    ++csr.rev_offsets[dst[r] + 1];
  }
  for (uint32_t u = 0; u < n; ++u) {
    csr.fwd_offsets[u + 1] += csr.fwd_offsets[u];
    csr.rev_offsets[u + 1] += csr.rev_offsets[u];
  }
  csr.fwd_targets.resize(n_edges);
  csr.rev_sources.resize(n_edges);
  std::vector<uint32_t> fcur(csr.fwd_offsets.begin(),
                             csr.fwd_offsets.end() - 1);
  std::vector<uint32_t> rcur(csr.rev_offsets.begin(),
                             csr.rev_offsets.end() - 1);
  for (uint32_t r = 0; r < n_edges; ++r) {
    csr.fwd_targets[fcur[src[r]]++] = dst[r];
    csr.rev_sources[rcur[dst[r]]++] = src[r];
  }

  // Sorted layout: per-span ascending dense ids for binary search and
  // bitset expansion.
  csr.sorted_offsets = csr.fwd_offsets;
  csr.sorted_targets = csr.fwd_targets;
  for (uint32_t u = 0; u < n; ++u) {
    std::sort(csr.sorted_targets.begin() + csr.sorted_offsets[u],
              csr.sorted_targets.begin() + csr.sorted_offsets[u + 1]);
  }

  if (metrics != nullptr) {
    metrics->counter("columnar.builds")->Increment();
    metrics->counter("columnar.build_ns")->Add(obs::NowNs() - t0);
  }
  return csr;
}

}  // namespace graphlog::columnar
