// CSR (compressed sparse row) adjacency for binary relations.
//
// A Csr is an immutable columnar snapshot of one arity-2 Relation: both
// columns are interned into dense uint32 node ids (first-appearance
// order, so the mapping is deterministic), and three adjacency layouts
// are materialized over them:
//
//   fwd    — for each source node, its targets in *row insertion order*.
//            This is byte-for-byte the iteration order of the row
//            engine's hash-index posting lists (which store row ids in
//            insertion order), so a probe on column {0} served from fwd
//            enumerates matches in exactly the order the row path would.
//   rev    — the mirror for probes on column {1}: for each target, its
//            sources in row insertion order.
//   sorted — for each source, targets in ascending dense-id order.
//            Backs O(log d) existence checks (probes on {0,1}, negation)
//            and the bitset kernels' frontier expansion.
//
// Invalidation contract: a Csr never observes later mutations of its
// source Relation. It carries the (uid, data_generation, size) stamp of
// the relation at build time — the same validation key the result cache
// uses — and CsrCache (csr_cache.h) rebuilds whenever the live relation's
// stamp differs. A Csr held by shared_ptr stays valid (as a snapshot)
// even after the source relation changes or dies.

#ifndef GRAPHLOG_COLUMNAR_CSR_H_
#define GRAPHLOG_COLUMNAR_CSR_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "gov/governor.h"
#include "obs/metrics.h"
#include "storage/relation.h"

namespace graphlog::columnar {

/// \brief Immutable CSR snapshot of a binary relation. Build with
/// BuildCsr(); share with shared_ptr (all members are read-only after
/// the build, so concurrent reads are safe).
struct Csr {
  /// Validation stamp of the source relation at build time.
  uint64_t source_uid = 0;
  uint64_t source_data_generation = 0;
  size_t source_size = 0;

  /// Dense node id -> value, in first-appearance order over
  /// (row[0], row[1]) scans of the rows.
  std::vector<Value> values;
  /// Value -> dense node id (inverse of `values`).
  std::unordered_map<Value, uint32_t, ValueHash> ids;

  // All offset arrays have num_nodes()+1 entries; the span of node u in
  // layout X is X_targets[X_offsets[u] .. X_offsets[u+1]).
  std::vector<uint32_t> fwd_offsets, fwd_targets;
  std::vector<uint32_t> rev_offsets, rev_sources;
  std::vector<uint32_t> sorted_offsets, sorted_targets;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(values.size());
  }
  size_t num_edges() const { return fwd_targets.size(); }

  /// \brief Dense id of `v`, or -1 when the value occurs in no row.
  int64_t IdOf(const Value& v) const {
    auto it = ids.find(v);
    return it == ids.end() ? -1 : static_cast<int64_t>(it->second);
  }

  std::span<const uint32_t> Fwd(uint32_t u) const {
    return {fwd_targets.data() + fwd_offsets[u],
            fwd_targets.data() + fwd_offsets[u + 1]};
  }
  std::span<const uint32_t> Rev(uint32_t t) const {
    return {rev_sources.data() + rev_offsets[t],
            rev_sources.data() + rev_offsets[t + 1]};
  }
  std::span<const uint32_t> Sorted(uint32_t u) const {
    return {sorted_targets.data() + sorted_offsets[u],
            sorted_targets.data() + sorted_offsets[u + 1]};
  }

  /// \brief Existence of edge (u, t): binary search in the sorted span.
  bool HasEdge(uint32_t u, uint32_t t) const;

  /// \brief Estimated resident bytes (structural, like
  /// Relation::MemoryBytes).
  size_t MemoryBytes() const;
};

/// \brief Builds a CSR snapshot of `rel` (which must have arity 2).
///
/// Consults the governor's `csr.build` injection point first (null
/// governor is fine) and, when `metrics` is set, bumps
/// `columnar.builds` / `columnar.build_ns`.
Result<Csr> BuildCsr(const storage::Relation& rel,
                     obs::MetricsRegistry* metrics = nullptr,
                     const gov::GovernorContext* governor = nullptr);

}  // namespace graphlog::columnar

#endif  // GRAPHLOG_COLUMNAR_CSR_H_
