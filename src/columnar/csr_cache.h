// Generation-validated cache of CSR snapshots, one per relation uid.
//
// The invalidation contract mirrors cache::ResultCache: a cached Csr is
// served only while the live relation's (uid, data_generation, size)
// stamp equals the stamp captured at build time. Any data change —
// Insert, bulk append, Clear, TruncateTo — bumps data_generation and the
// next Get() rebuilds; pure index maintenance (DropIndexes) bumps only
// the structural generation and does NOT invalidate, because a CSR
// depends only on row contents. Uids are never reused
// (Database::Declare), so a dropped-and-redeclared relation can never
// alias a stale entry.
//
// Relations with uid 0 (not owned by a Database — e.g. the engine's
// per-round delta relations) are built fresh on every call and never
// cached: uid 0 is not unique, and deltas die within the round anyway.

#ifndef GRAPHLOG_COLUMNAR_CSR_CACHE_H_
#define GRAPHLOG_COLUMNAR_CSR_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "columnar/csr.h"

namespace graphlog::columnar {

/// \brief Caches one immutable CSR snapshot per relation uid,
/// invalidated by the relation's data_generation counter. Thread-safe;
/// the returned shared_ptr stays valid after later invalidations.
class CsrCache {
 public:
  /// \brief Returns a CSR snapshot of `rel` (arity 2), reusing the
  /// cached one when still valid. `metrics` (nullable) receives
  /// columnar.builds / build_ns / reuses / invalidations; `governor`
  /// (nullable) gates builds through the `csr.build` injection point.
  Result<std::shared_ptr<const Csr>> Get(
      const storage::Relation& rel, obs::MetricsRegistry* metrics = nullptr,
      const gov::GovernorContext* governor = nullptr);

  /// \brief Lifetime counters (also exported as columnar.* metrics).
  struct Stats {
    uint64_t builds = 0;         ///< CSR constructions (incl. uncached)
    uint64_t reuses = 0;         ///< hits served without rebuilding
    uint64_t invalidations = 0;  ///< stale entries replaced
  };
  Stats stats() const;

  /// \brief Drops every cached snapshot (outstanding shared_ptrs stay
  /// valid). Counters are kept.
  void Clear();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Csr>> by_uid_;
  Stats stats_;
};

}  // namespace graphlog::columnar

#endif  // GRAPHLOG_COLUMNAR_CSR_CACHE_H_
