#include "columnar/csr_cache.h"

#include <utility>

namespace graphlog::columnar {

Result<std::shared_ptr<const Csr>> CsrCache::Get(
    const storage::Relation& rel, obs::MetricsRegistry* metrics,
    const gov::GovernorContext* governor) {
  const uint64_t uid = rel.uid();
  bool invalidated = false;
  if (uid != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_uid_.find(uid);
    if (it != by_uid_.end()) {
      const Csr& c = *it->second;
      if (c.source_data_generation == rel.data_generation() &&
          c.source_size == rel.size()) {
        ++stats_.reuses;
        if (metrics != nullptr) {
          metrics->counter("columnar.reuses")->Increment();
        }
        return it->second;
      }
      by_uid_.erase(it);
      invalidated = true;
    }
  }
  GRAPHLOG_ASSIGN_OR_RETURN(Csr built, BuildCsr(rel, metrics, governor));
  auto csr = std::make_shared<const Csr>(std::move(built));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
    if (invalidated) {
      ++stats_.invalidations;
      if (metrics != nullptr) {
        metrics->counter("columnar.invalidations")->Increment();
      }
    }
    if (uid != 0) by_uid_[uid] = csr;
  }
  return csr;
}

CsrCache::Stats CsrCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CsrCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_uid_.clear();
}

size_t CsrCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_uid_.size();
}

}  // namespace graphlog::columnar
