// Flat bitsets over uint64_t words: the frontier/visited representation
// of the columnar kernels (per-source BFS transitive closure, RPQ
// product-automaton search). Word-at-a-time operations — or-assign,
// population count, ascending scan of set bits via countr_zero — are the
// whole point; anything per-bit lives behind Set/Test.

#ifndef GRAPHLOG_COLUMNAR_BITSET_H_
#define GRAPHLOG_COLUMNAR_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphlog::columnar {

/// \brief A fixed-capacity bitset backed by a vector of 64-bit words.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t bits() const { return bits_; }
  bool empty() const { return words_.empty(); }

  void Set(uint32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  /// \brief Sets bit `i`; returns true when it was previously clear.
  bool TestAndSet(uint32_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (w & mask) return false;
    w |= mask;
    return true;
  }

  /// \brief Clears every bit, keeping the capacity.
  void Reset() { words_.assign(words_.size(), 0); }

  /// \brief Resizes to `bits` and clears everything.
  void ResetTo(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// \brief this |= other (capacities must match).
  void OrWith(const Bitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// \brief this &= ~other (capacities must match); returns true when
  /// any bit survives. The word-at-a-time "which frontier candidates are
  /// genuinely new" step of the BFS kernels.
  bool AndNot(const Bitset& other) {
    uint64_t any = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
      any |= words_[i];
    }
    return any != 0;
  }

  /// \brief Calls `fn(i)` for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(static_cast<uint32_t>(wi * 64 + static_cast<size_t>(b)));
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace graphlog::columnar

#endif  // GRAPHLOG_COLUMNAR_BITSET_H_
