#include "gov/fault_injection.h"

#include <chrono>
#include <thread>

namespace graphlog::gov {

void FaultInjector::Arm(std::string_view site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  s.spec = std::move(spec);
  s.armed = true;
  s.hit_count = 0;
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::vector<std::pair<std::string, FaultSpec>> FaultInjector::Armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, FaultSpec>> out;
  for (const auto& [name, site] : sites_) {
    if (site.armed) out.emplace_back(name, site.spec);
  }
  return out;
}

Status FaultInjector::Hit(std::string_view site,
                          const CancellationToken* token) {
  FaultSpec spec;
  uint64_t hit = 0;
  bool triggered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = sites_[std::string(site)];
    hit = ++s.hit_count;
    if (s.armed && (hit == s.spec.trigger_hit ||
                    (s.spec.repeat && hit >= s.spec.trigger_hit))) {
      triggered = true;
      spec = s.spec;
    }
  }
  if (!triggered) return Status::OK();
  if (spec.action == FaultAction::kFail) {
    return Status(spec.code, spec.message + " (site " + std::string(site) +
                                 ", hit " + std::to_string(hit) + ")");
  }
  // kStall: sleep outside the lock in short slices so a cancellation —
  // the very scenario stalls exist to exercise — wakes the lane early.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(spec.stall_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (token != nullptr && token->cancelled()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

}  // namespace graphlog::gov
