// Query governor: deadlines, cooperative cancellation, and resource
// budgets for long-running evaluations.
//
// GraphLog queries are recursive by construction — closure literals and
// path regular expressions compile to fixpoints whose cost is
// data-dependent and easy to underestimate. The observability layer (PRs
// 2–3) makes a runaway query visible; this module makes it *stoppable*
// and *boundable*. A GovernorContext bundles three orthogonal controls:
//
//   * CancellationToken — a shared, thread-safe flag. Cancel() from any
//     thread (a SIGINT handler, an admission controller); every
//     long-running loop polls it cooperatively. Polling is one relaxed
//     atomic load.
//   * Deadline — a wall-clock cutoff. Expiry is checked at the same
//     cooperative points; by nature nondeterministic in *where* it trips.
//   * ResourceBudget — caps on output rows, per-round delta rows,
//     fixpoint rounds, and estimated bytes (Relation::MemoryBytes, a
//     deterministic structural estimate). Budgets are checked at round
//     boundaries, so rows/rounds/bytes trips are bit-identical across
//     num_threads settings — the determinism contract of DESIGN §7.
//
// Violations surface as the Status taxonomy kCancelled /
// kDeadlineExceeded / kBudgetExceeded. When ResourceBudget::return_partial
// is set, a budget trip instead degrades gracefully: the engine stops at
// the round boundary and returns the partial fixpoint computed so far,
// flagged truncated (EvalStats::truncated / QueryResponse::truncated).
// Cancellation and deadline trips never return partial results — the
// engine rolls the Database back to its pre-run state instead.
//
// The context also carries an optional FaultInjector (fault_injection.h)
// so tests and the shell can arm deterministic failures or stalls at the
// same named points the governor checks.
//
// A null GovernorContext pointer is the zero-overhead path everywhere:
// every instrumentation site is a single pointer test, exactly like a
// disabled Tracer or MetricsRegistry.

#ifndef GRAPHLOG_GOV_GOVERNOR_H_
#define GRAPHLOG_GOV_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace graphlog::gov {

class FaultInjector;  // gov/fault_injection.h

/// \brief A shared cancellation flag: copies observe the same state, so a
/// token handed to a query can be cancelled from another thread (shell
/// SIGINT handler, admission controller) while the engine polls it.
///
/// Cancel/cancelled are single relaxed atomic operations — safe to call
/// from a signal handler and cheap enough to poll per work item.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// \brief Requests cancellation; idempotent, callable from any thread.
  void Cancel() const { state_->store(true, std::memory_order_relaxed); }

  /// \brief True once Cancel() has been called (on this or any copy).
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

  /// \brief Re-arms the token for reuse (shell sessions reset between
  /// queries). Not safe concurrently with an in-flight governed query.
  void Reset() const { state_->store(false, std::memory_order_relaxed); }

  /// \brief The raw flag, for layers that must not depend on gov
  /// (exec::ThreadPool takes a `const std::atomic<bool>*` stop flag).
  const std::atomic<bool>* flag() const { return state_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief A wall-clock cutoff. Default-constructed deadlines never expire.
class Deadline {
 public:
  Deadline() = default;

  static Deadline AfterNanos(uint64_t ns) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    return d;
  }
  static Deadline AfterMillis(uint64_t ms) {
    return AfterNanos(ms * 1'000'000ull);
  }

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// \brief Caps on what one evaluation may consume. 0 = unlimited.
///
/// rows/rounds/bytes are checked at round boundaries against
/// deterministic quantities (tuple counts, Relation::MemoryBytes), so a
/// trip — and the partial result retained under `return_partial` — is
/// bit-identical across num_threads settings. Enforcement is at-least:
/// the round that overshoots completes before the trip is detected, so a
/// partial result may exceed the cap by up to one round's derivations.
struct ResourceBudget {
  /// Max novel tuples derived by the run (EvalStats::tuples_derived; TC:
  /// closure pairs; RPQ: result pairs).
  uint64_t max_result_rows = 0;
  /// Max combined delta-relation rows at any semi-naive round start.
  uint64_t max_delta_rows = 0;
  /// Max fixpoint rounds across the run (EvalStats::iterations; TC:
  /// TcStats::rounds).
  uint64_t max_rounds = 0;
  /// Max estimated bytes (database + live deltas, Relation::MemoryBytes).
  uint64_t max_bytes = 0;
  /// Graceful degradation: a rows/rounds/delta/bytes trip stops the
  /// fixpoint at the round boundary and returns the partial result
  /// flagged truncated instead of failing with kBudgetExceeded.
  bool return_partial = false;

  bool any() const {
    return max_result_rows != 0 || max_delta_rows != 0 || max_rounds != 0 ||
           max_bytes != 0;
  }
};

/// \brief The bundle threaded through QueryOptions -> EvalOptions ->
/// every long-running loop. The context itself is read-only during a run
/// (the token's shared state is the one mutable cell), so one context can
/// be shared by every lane of a parallel evaluation.
struct GovernorContext {
  CancellationToken token;
  Deadline deadline;
  ResourceBudget budget;
  /// Optional deterministic fault injection; null = no injection points
  /// armed. See gov/fault_injection.h.
  FaultInjector* faults = nullptr;

  /// \brief Cancellation + deadline check, tagged with the site name for
  /// the error message. Does not touch the fault injector.
  Status CheckInterrupts(std::string_view site) const;

  /// \brief Full check at a named injection point: cancellation,
  /// deadline, then any armed fault at `site` (a stall re-checks
  /// cancellation/deadline afterwards, so a stalled lane still honors a
  /// cancel that arrived mid-stall).
  Status Check(std::string_view site) const;
};

/// \brief Null-tolerant helper: OK when `g` is null, g->Check(site)
/// otherwise. The single-pointer-test disabled path.
inline Status CheckPoint(const GovernorContext* g, std::string_view site) {
  if (g == nullptr) return Status::OK();
  return g->Check(site);
}

/// \brief Builds the standard kBudgetExceeded message:
/// "<budget> budget exceeded at <site>: <observed> > <limit>".
Status BudgetExceededError(std::string_view budget, std::string_view site,
                           uint64_t observed, uint64_t limit);

}  // namespace graphlog::gov

#endif  // GRAPHLOG_GOV_GOVERNOR_H_
