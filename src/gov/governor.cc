#include "gov/governor.h"

#include "gov/fault_injection.h"

namespace graphlog::gov {

Status GovernorContext::CheckInterrupts(std::string_view site) const {
  if (token.cancelled()) {
    return Status::Cancelled("query cancelled at " + std::string(site));
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("deadline exceeded at " +
                                    std::string(site));
  }
  return Status::OK();
}

Status GovernorContext::Check(std::string_view site) const {
  GRAPHLOG_RETURN_NOT_OK(CheckInterrupts(site));
  if (faults != nullptr) {
    GRAPHLOG_RETURN_NOT_OK(faults->Hit(site, &token));
    // A stall may have outlasted the deadline or absorbed a cancel; the
    // point must not report OK past either.
    GRAPHLOG_RETURN_NOT_OK(CheckInterrupts(site));
  }
  return Status::OK();
}

Status BudgetExceededError(std::string_view budget, std::string_view site,
                           uint64_t observed, uint64_t limit) {
  return Status::BudgetExceeded(std::string(budget) +
                                " budget exceeded at " + std::string(site) +
                                ": " + std::to_string(observed) + " > " +
                                std::to_string(limit));
}

}  // namespace graphlog::gov
