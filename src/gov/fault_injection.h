// Deterministic fault injection at named points in the engine.
//
// Every error path the governor creates — mid-stratum cancellation,
// per-lane failure propagation out of the thread pool, partial-result
// assembly, loader aborts — should be exercised by ctest, not by luck.
// A FaultInjector is a registry of named injection points that tests and
// the shell arm to fail (return an injected Status) or stall (sleep,
// waking early on cancellation) on the Nth time execution passes through
// the point.
//
// Injection points wired through the engine (site names are stable API,
// used by `.fault` in the shell and the robustness test suite):
//
//   eval.round   — top of every fixpoint round (eval/engine.cc)
//   pool.task    — before each work item a pool lane claims (engine
//                  batches and the parallel TC fan-out)
//   tc.expand    — per fixpoint round / per source of the TC kernels
//   rpq.step     — periodically inside the product-automaton search
//   io.load      — before a fact file's parsed tuples are applied
//   csr.build    — before a CSR snapshot is built from a relation
//                  (columnar/csr.cc; engine batches and the columnar TC)
//   wal.append   — before a committed batch's record is appended to the
//                  write-ahead log (durability/wal.cc); an injected
//                  failure rolls the in-memory apply back
//   wal.fsync    — before the WAL fsync the fsync policy requests
//   checkpoint.write — before a checkpoint writes any byte
//                  (durability/checkpoint.cc); an aborted write never
//                  clobbers the previous valid checkpoint
//   net.accept   — after the TCP listener accepts a connection
//                  (net/net_server.cc); an injected failure answers one
//                  error frame and closes, counted as a rejection
//   net.read     — before each request frame is read off a connection;
//                  an injected failure drops the connection
//   net.write    — before each response frame is written; an injected
//                  failure drops the connection (the client observes a
//                  severed stream, never a half-written frame)
//
// Hit counts are tracked per site whether or not a fault is armed, so
// tests can assert coverage ("the loader consulted io.load exactly
// once"). Arming and hitting are mutex-serialized — injection points sit
// at round/task granularity, never per tuple — and hit order across
// concurrent lanes is the only nondeterminism (single-lane runs are
// fully deterministic).

#ifndef GRAPHLOG_GOV_FAULT_INJECTION_H_
#define GRAPHLOG_GOV_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "gov/governor.h"

namespace graphlog::gov {

/// \brief What an armed injection point does when it triggers.
enum class FaultAction : uint8_t {
  kFail,   ///< return the injected Status
  kStall,  ///< sleep `stall_ms` (woken early by cancellation), then OK
};

/// \brief One armed fault.
struct FaultSpec {
  FaultAction action = FaultAction::kFail;
  /// Fires on the Nth hit of the site (1-based) after arming.
  uint64_t trigger_hit = 1;
  /// When set, fires on every hit >= trigger_hit, not just the Nth.
  bool repeat = false;
  /// Status returned by a kFail trigger (the site and hit number are
  /// appended to the message).
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";
  /// Sleep duration for kStall triggers.
  uint64_t stall_ms = 0;
};

/// \brief Thread-safe registry of named injection points.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// \brief Arms `site` with `spec`, resetting the site's hit count so
  /// trigger_hit counts from this arming.
  void Arm(std::string_view site, FaultSpec spec);

  /// \brief Disarms `site`; its hit count keeps accumulating.
  void Disarm(std::string_view site);

  /// \brief Disarms every site and zeroes all hit counts.
  void Reset();

  /// \brief Times execution has passed through `site` since the last
  /// Arm/Reset of it.
  uint64_t hits(std::string_view site) const;

  /// \brief The currently armed sites (for shell `.fault list`).
  std::vector<std::pair<std::string, FaultSpec>> Armed() const;

  /// \brief Called by the engine at each injection point. Counts the hit;
  /// when an armed fault triggers, either returns its Status (kFail) or
  /// stalls (kStall) — sleeping in short slices so a cancellation on
  /// `token` (may be null) wakes it early — and returns OK.
  Status Hit(std::string_view site, const CancellationToken* token = nullptr);

 private:
  struct Site {
    FaultSpec spec;
    bool armed = false;
    uint64_t hit_count = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
};

}  // namespace graphlog::gov

#endif  // GRAPHLOG_GOV_FAULT_INJECTION_H_
