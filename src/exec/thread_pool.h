// A small reusable fork-join thread pool.
//
// The evaluation engine (eval/engine.cc) and the parallel TC kernel
// (tc/parallel_tc.cc) both fan data-parallel work over a fixed set of
// worker lanes and then merge per-lane results deterministically. This
// pool provides exactly that primitive: ParallelFor dispatches a dense
// index range across lanes through a shared work counter and blocks until
// every index has run. Work items must not assume any ordering — callers
// that need deterministic output keep per-item (or per-lane) buffers and
// merge them in index order after ParallelFor returns.

#ifndef GRAPHLOG_EXEC_THREAD_POOL_H_
#define GRAPHLOG_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphlog::exec {

/// \brief A fork-join pool with a fixed parallelism degree.
///
/// A pool with parallelism P owns P-1 background threads; the thread
/// calling ParallelFor is the P-th lane, so a pool never leaves its
/// caller idle. Lanes are identified by a stable worker id in [0, P),
/// letting callers keep per-lane scratch state without locking.
///
/// ParallelFor calls must not be nested: one batch runs at a time, and
/// the callback must not call back into the same pool.
class ThreadPool {
 public:
  /// \brief Creates a pool with `parallelism` lanes (clamped to >= 1;
  /// with 1 lane every ParallelFor runs inline on the caller).
  explicit ThreadPool(unsigned parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned parallelism() const { return parallelism_; }

  /// \brief Runs fn(worker, index) for every index in [0, n), spread
  /// across all lanes (`worker` < parallelism()); returns once every
  /// index has completed. Indices are claimed dynamically, so callers
  /// must not rely on which lane runs which index.
  ///
  /// When `stop` is non-null, every lane re-reads it (relaxed) before
  /// claiming each index and stops claiming once it is true — the
  /// cooperative-cancellation hook of the query governor: latency from a
  /// cancel to the pool going quiet is bounded by one in-flight work
  /// item, not by the batch. Already-claimed items still complete, and
  /// ParallelFor still joins every lane before returning, so the caller
  /// may inspect per-item buffers safely afterwards. Indices skipped by a
  /// stop are simply never run.
  void ParallelFor(size_t n,
                   const std::function<void(unsigned worker, size_t index)>& fn,
                   const std::atomic<bool>* stop = nullptr);

  /// \brief Maps an options knob to a lane count: 0 means hardware
  /// concurrency, any other value is used as-is.
  static unsigned ResolveParallelism(unsigned requested);

 private:
  void WorkerLoop(unsigned worker);
  void RunBatch(unsigned worker);

  const unsigned parallelism_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // ParallelFor waits here for completion
  uint64_t batch_epoch_ = 0;         // guarded by mu_
  unsigned workers_busy_ = 0;        // guarded by mu_
  bool shutdown_ = false;            // guarded by mu_

  // Current batch. Published under mu_ (with the epoch bump) before the
  // workers wake, so reads after the epoch check are race-free.
  const std::function<void(unsigned, size_t)>* batch_fn_ = nullptr;
  size_t batch_n_ = 0;
  const std::atomic<bool>* batch_stop_ = nullptr;
  std::atomic<size_t> batch_next_{0};
};

}  // namespace graphlog::exec

#endif  // GRAPHLOG_EXEC_THREAD_POOL_H_
