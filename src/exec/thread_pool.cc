#include "exec/thread_pool.h"

#include <algorithm>

namespace graphlog::exec {

unsigned ThreadPool::ResolveParallelism(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned parallelism)
    : parallelism_(std::max(1u, parallelism)) {
  workers_.reserve(parallelism_ - 1);
  for (unsigned w = 1; w < parallelism_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunBatch(unsigned worker) {
  const size_t n = batch_n_;
  const auto* fn = batch_fn_;
  const std::atomic<bool>* stop = batch_stop_;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
    size_t i = batch_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    (*fn)(worker, i);
  }
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || batch_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = batch_epoch_;
    }
    RunBatch(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_busy_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(unsigned, size_t)>& fn,
                             const std::atomic<bool>* stop) {
  if (n == 0) return;
  if (parallelism_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      fn(0, i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_fn_ = &fn;
    batch_n_ = n;
    batch_stop_ = stop;
    batch_next_.store(0, std::memory_order_relaxed);
    workers_busy_ = parallelism_ - 1;
    ++batch_epoch_;
  }
  work_cv_.notify_all();
  RunBatch(0);  // the calling thread is lane 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_busy_ == 0; });
  batch_fn_ = nullptr;
  batch_stop_ = nullptr;
}

}  // namespace graphlog::exec
