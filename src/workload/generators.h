// Synthetic workload generators.
//
// The paper's prototype ran on hand-drawn flight databases, a Smalltalk
// image, and the HAM hypertext server — none of which exist here, so each
// evaluation scenario gets a parameterized generator producing the same
// *kind* of data:
//
//   * Figure 1 / 12 : flight schedule networks (airlines, times),
//   * Figure 2 / 3  : family forests (descendant / father / mother),
//   * Figure 6      : software module call graphs,
//   * Figure 11     : task scheduling DAGs with durations,
//   * [CM89]        : hypertext webs (pages, links, anchors),
//   * generic       : random digraphs, chains, grids, DAGs for the TC and
//                     scaling ablations.
//
// All generators are deterministic in their seed.

#ifndef GRAPHLOG_WORKLOAD_GENERATORS_H_
#define GRAPHLOG_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>

#include "common/status.h"
#include "storage/database.h"

namespace graphlog::workload {

// ---------------------------------------------------------------------------
// Generic digraphs (relation name `edge`, node names n0..n{N-1})

/// \brief Erdős–Rényi style digraph: n nodes, ~m uniformly random edges
/// (no self loops). Facts: edge(ni, nj).
Status RandomDigraph(int n, int m, uint64_t seed, storage::Database* db,
                     const char* relation = "edge");

/// \brief A simple chain n0 -> n1 -> ... -> n{len}: worst case diameter.
Status Chain(int len, storage::Database* db, const char* relation = "edge");

/// \brief Random DAG: edges only from lower to higher node index.
Status RandomDag(int n, int m, uint64_t seed, storage::Database* db,
                 const char* relation = "edge");

/// \brief Complete k-ary tree of the given depth, edges parent -> child.
Status KaryTree(int arity, int depth, storage::Database* db,
                const char* relation = "edge");

// ---------------------------------------------------------------------------
// Figure 1 / Figure 12: flights

/// \brief Parameters for the flight-schedule generator.
struct FlightsOptions {
  int num_cities = 10;
  int num_flights = 40;
  int num_airlines = 3;   ///< also emits per-airline binary relations
  int capitals = 3;       ///< unary capital(city) facts
  uint64_t seed = 1;
};

/// \brief Emits the Figure 1 schema: from(f,c), to(f,c), departure(f,t),
/// arrival(f,t) with arrival > departure, capital(c); plus one binary
/// relation per airline (al0(c1,c2), ...) in the Figure 12 style.
Status Flights(const FlightsOptions& options, storage::Database* db);

/// \brief Loads the exact Figure 1 database of the paper (times in
/// minutes since midnight).
Status Figure1Flights(storage::Database* db);

// ---------------------------------------------------------------------------
// Figures 2/3 and 5: families

/// \brief Parameters for the family-forest generator.
struct FamilyOptions {
  int generations = 4;
  int roots = 2;
  int children_min = 1;
  int children_max = 3;
  /// Fraction of person pairs sharing a friendship edge.
  double friend_prob = 0.05;
  int num_cities = 4;
  uint64_t seed = 7;
};

/// \brief Emits person(p), descendant(ancestor, descendant) [one step],
/// father(f,c), mother(m,c,hospital), friend(a,b), residence(p,city).
Status Family(const FamilyOptions& options, storage::Database* db);

// ---------------------------------------------------------------------------
// Figure 6: software modules

/// \brief Parameters for the call-graph generator.
struct ModulesOptions {
  int num_modules = 8;
  int functions_per_module = 6;
  int num_libraries = 3;
  double local_call_prob = 0.3;
  double extern_call_prob = 0.05;
  double library_prob = 0.15;
  uint64_t seed = 11;
};

/// \brief Emits in-module(f,m), calls-local(f1,f2), calls-extn(f1,f2),
/// in-library(f,l) — the Figure 6 schema.
Status Modules(const ModulesOptions& options, storage::Database* db);

// ---------------------------------------------------------------------------
// Figure 11: task scheduling

/// \brief Parameters for the scheduling-DAG generator.
struct TasksOptions {
  int num_tasks = 20;
  double edge_prob = 0.2;  ///< probability of affects(i,j) for i < j
  int max_duration = 10;
  uint64_t seed = 13;
};

/// \brief Emits affects(t1,t2) (a DAG), duration(t,d),
/// scheduled-start(t,s) (consistent with the DAG), and delay(t,ds) for one
/// randomly chosen delayed task.
Status Tasks(const TasksOptions& options, storage::Database* db);

// ---------------------------------------------------------------------------
// [CM89]: hypertext

/// \brief Parameters for the hypertext-web generator.
struct HypertextOptions {
  int num_pages = 30;
  double link_prob = 0.08;
  int num_authors = 5;
  uint64_t seed = 17;
};

/// \brief Emits link(p1,p2), author(p,a), title-word(p,w) — a small
/// hypertext abstract machine image.
Status Hypertext(const HypertextOptions& options, storage::Database* db);

}  // namespace graphlog::workload

#endif  // GRAPHLOG_WORKLOAD_GENERATORS_H_
