#include "workload/generators.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace graphlog::workload {

using storage::Database;
using storage::Tuple;

namespace {

std::string N(const char* prefix, int i) {
  return std::string(prefix) + std::to_string(i);
}

Value Sym(Database* db, const std::string& s) {
  return Value::Sym(db->Intern(s));
}

}  // namespace

Status RandomDigraph(int n, int m, uint64_t seed, Database* db,
                     const char* relation) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::set<std::pair<int, int>> used;
  int emitted = 0, attempts = 0;
  while (emitted < m && attempts < m * 20) {
    ++attempts;
    int a = pick(rng), b = pick(rng);
    if (a == b) continue;
    if (!used.insert({a, b}).second) continue;
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact(relation, Tuple{Sym(db, N("n", a)), Sym(db, N("n", b))}));
    ++emitted;
  }
  return Status::OK();
}

Status Chain(int len, Database* db, const char* relation) {
  for (int i = 0; i < len; ++i) {
    GRAPHLOG_RETURN_NOT_OK(db->AddFact(
        relation, Tuple{Sym(db, N("n", i)), Sym(db, N("n", i + 1))}));
  }
  return Status::OK();
}

Status RandomDag(int n, int m, uint64_t seed, Database* db,
                 const char* relation) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::set<std::pair<int, int>> used;
  int emitted = 0, attempts = 0;
  while (emitted < m && attempts < m * 20) {
    ++attempts;
    int a = pick(rng), b = pick(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact(relation, Tuple{Sym(db, N("n", a)), Sym(db, N("n", b))}));
    ++emitted;
  }
  return Status::OK();
}

Status KaryTree(int arity, int depth, Database* db, const char* relation) {
  // Nodes are numbered heap-style: children of i are i*arity+1 ... +arity.
  int total = 1;
  int level = 1;
  for (int d = 0; d < depth; ++d) {
    level *= arity;
    total += level;
  }
  for (int i = 0; (i * arity + 1) < total; ++i) {
    for (int k = 1; k <= arity; ++k) {
      int child = i * arity + k;
      if (child >= total) break;
      GRAPHLOG_RETURN_NOT_OK(db->AddFact(
          relation, Tuple{Sym(db, N("n", i)), Sym(db, N("n", child))}));
    }
  }
  return Status::OK();
}

Status Flights(const FlightsOptions& options, Database* db) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> city(0, options.num_cities - 1);
  std::uniform_int_distribution<int> dep(0, 22 * 60);
  std::uniform_int_distribution<int> dur(45, 10 * 60);
  std::uniform_int_distribution<int> airline(0, options.num_airlines - 1);

  for (int c = 0; c < options.capitals && c < options.num_cities; ++c) {
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("capital", Tuple{Sym(db, N("city", c))}));
  }
  for (int f = 0; f < options.num_flights; ++f) {
    int from = city(rng);
    int to = city(rng);
    while (to == from) to = city(rng);
    int d = dep(rng);
    int a = d + dur(rng);
    Value fv = Sym(db, N("f", f));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("from", Tuple{fv, Sym(db, N("city", from))}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("to", Tuple{fv, Sym(db, N("city", to))}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("departure", Tuple{fv, Value::Int(d)}));
    GRAPHLOG_RETURN_NOT_OK(db->AddFact("arrival", Tuple{fv, Value::Int(a)}));
    // Figure 12 style: one binary city-to-city relation per airline.
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact(N("al", airline(rng)),
                    Tuple{Sym(db, N("city", from)), Sym(db, N("city", to))}));
  }
  return Status::OK();
}

Status Figure1Flights(Database* db) {
  // The database drawn in Figure 1 of the paper. Cities and flight
  // numbers are as shown; times are minutes since midnight.
  struct F {
    int num;
    const char* from;
    const char* to;
    int dep;
    int arr;
  };
  // Times as printed in the figure (24h clock).
  const F flights[] = {
      {106, "toronto", "ottawa", 21 * 60 + 45, 23 * 60 + 15},
      {109, "ottawa", "toronto", 7 * 60 + 30, 9 * 60 + 0},
      {132, "toronto", "montreal", 12 * 60 + 0, 13 * 60 + 10},
      {143, "montreal", "toronto", 15 * 60 + 0, 16 * 60 + 10},
      {156, "ottawa", "montreal", 10 * 60 + 0, 10 * 60 + 40},
      {158, "montreal", "ottawa", 18 * 60 + 0, 18 * 60 + 40},
  };
  for (const F& f : flights) {
    Value fv = Value::Int(f.num);
    GRAPHLOG_RETURN_NOT_OK(db->AddFact("from", Tuple{fv, Sym(db, f.from)}));
    GRAPHLOG_RETURN_NOT_OK(db->AddFact("to", Tuple{fv, Sym(db, f.to)}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("departure", Tuple{fv, Value::Int(f.dep)}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact("arrival", Tuple{fv, Value::Int(f.arr)}));
  }
  GRAPHLOG_RETURN_NOT_OK(db->AddFact("capital", Tuple{Sym(db, "ottawa")}));
  return Status::OK();
}

Status Family(const FamilyOptions& options, Database* db) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> nchildren(options.children_min,
                                               options.children_max);
  std::uniform_int_distribution<int> city(0, options.num_cities - 1);
  std::uniform_int_distribution<int> hospital(0, 2);
  std::bernoulli_distribution coin(0.5);

  std::vector<std::string> current;
  std::vector<std::string> all;
  int counter = 0;
  for (int r = 0; r < options.roots; ++r) {
    current.push_back(N("p", counter++));
  }
  all = current;
  for (int g = 1; g < options.generations; ++g) {
    std::vector<std::string> next;
    for (const std::string& parent : current) {
      int k = nchildren(rng);
      for (int c = 0; c < k; ++c) {
        std::string child = N("p", counter++);
        GRAPHLOG_RETURN_NOT_OK(db->AddSymFact(
            "descendant", {parent, child}));
        if (coin(rng)) {
          GRAPHLOG_RETURN_NOT_OK(db->AddSymFact("father", {parent, child}));
        } else {
          GRAPHLOG_RETURN_NOT_OK(db->AddSymFact(
              "mother", {parent, child, N("hosp", hospital(rng))}));
        }
        next.push_back(child);
        all.push_back(child);
      }
    }
    current = std::move(next);
  }
  for (const std::string& p : all) {
    GRAPHLOG_RETURN_NOT_OK(db->AddSymFact("person", {p}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddSymFact("residence", {p, N("city", city(rng))}));
  }
  std::bernoulli_distribution friendly(options.friend_prob);
  for (const std::string& a : all) {
    for (const std::string& b : all) {
      if (a != b && friendly(rng)) {
        GRAPHLOG_RETURN_NOT_OK(db->AddSymFact("friend", {a, b}));
      }
    }
  }
  return Status::OK();
}

Status Modules(const ModulesOptions& options, Database* db) {
  std::mt19937_64 rng(options.seed);
  std::bernoulli_distribution local(options.local_call_prob);
  std::bernoulli_distribution extn(options.extern_call_prob);
  std::bernoulli_distribution lib(options.library_prob);
  std::uniform_int_distribution<int> library(0, options.num_libraries - 1);

  int nf = options.num_modules * options.functions_per_module;
  auto module_of = [&](int f) { return f / options.functions_per_module; };
  for (int f = 0; f < nf; ++f) {
    GRAPHLOG_RETURN_NOT_OK(db->AddSymFact(
        "in-module", {N("fn", f), N("mod", module_of(f))}));
    if (lib(rng)) {
      GRAPHLOG_RETURN_NOT_OK(db->AddSymFact(
          "in-library", {N("fn", f), N("lib", library(rng))}));
    }
  }
  // Make lib0 the async-io library alias for examples.
  for (int a = 0; a < nf; ++a) {
    for (int b = 0; b < nf; ++b) {
      if (a == b) continue;
      if (module_of(a) == module_of(b)) {
        if (local(rng)) {
          GRAPHLOG_RETURN_NOT_OK(
              db->AddSymFact("calls-local", {N("fn", a), N("fn", b)}));
        }
      } else if (extn(rng)) {
        GRAPHLOG_RETURN_NOT_OK(
            db->AddSymFact("calls-extn", {N("fn", a), N("fn", b)}));
      }
    }
  }
  return Status::OK();
}

Status Tasks(const TasksOptions& options, Database* db) {
  std::mt19937_64 rng(options.seed);
  std::bernoulli_distribution edge(options.edge_prob);
  std::uniform_int_distribution<int> dur(1, options.max_duration);

  std::vector<int> duration(options.num_tasks);
  for (int t = 0; t < options.num_tasks; ++t) {
    duration[t] = dur(rng);
    GRAPHLOG_RETURN_NOT_OK(db->AddFact(
        "duration", Tuple{Sym(db, N("t", t)), Value::Int(duration[t])}));
  }
  // DAG edges i -> j for i < j; scheduled starts consistent with the DAG.
  std::vector<int> start(options.num_tasks, 0);
  for (int i = 0; i < options.num_tasks; ++i) {
    for (int j = i + 1; j < options.num_tasks; ++j) {
      if (!edge(rng)) continue;
      GRAPHLOG_RETURN_NOT_OK(db->AddFact(
          "affects", Tuple{Sym(db, N("t", i)), Sym(db, N("t", j))}));
      start[j] = std::max(start[j], start[i] + duration[i]);
    }
  }
  for (int t = 0; t < options.num_tasks; ++t) {
    GRAPHLOG_RETURN_NOT_OK(db->AddFact(
        "scheduled-start", Tuple{Sym(db, N("t", t)), Value::Int(start[t])}));
  }
  // One delayed task.
  std::uniform_int_distribution<int> pick(0, options.num_tasks - 1);
  GRAPHLOG_RETURN_NOT_OK(db->AddFact(
      "delay", Tuple{Sym(db, N("t", pick(rng))), Value::Int(5)}));
  return Status::OK();
}

Status Hypertext(const HypertextOptions& options, Database* db) {
  std::mt19937_64 rng(options.seed);
  std::bernoulli_distribution link(options.link_prob);
  std::uniform_int_distribution<int> author(0, options.num_authors - 1);
  const char* words[] = {"graph",  "query",   "recursion", "visual",
                         "logic",  "closure", "hypertext", "path"};
  std::uniform_int_distribution<int> word(0, 7);

  for (int p = 0; p < options.num_pages; ++p) {
    GRAPHLOG_RETURN_NOT_OK(
        db->AddSymFact("author", {N("page", p), N("author", author(rng))}));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddSymFact("title-word", {N("page", p), words[word(rng)]}));
  }
  for (int a = 0; a < options.num_pages; ++a) {
    for (int b = 0; b < options.num_pages; ++b) {
      if (a != b && link(rng)) {
        GRAPHLOG_RETURN_NOT_OK(
            db->AddSymFact("link", {N("page", a), N("page", b)}));
      }
    }
  }
  return Status::OK();
}

}  // namespace graphlog::workload
