#include "net/net_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cerrno>
#include <cstring>

#include "durability/wal.h"

namespace graphlog::net {

namespace {

constexpr char kNetAccept[] = "net.accept";
constexpr char kNetRead[] = "net.read";
constexpr char kNetWrite[] = "net.write";

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

NetServer::NetServer(Server* server, NetServerOptions opts)
    : server_(server), opts_(opts) {
  if (opts_.metrics != nullptr) {
    m_connections_ = opts_.metrics->gauge("net.connections");
    m_accepted_ = opts_.metrics->counter("net.accepted");
    m_rejected_ = opts_.metrics->counter("net.rejected");
    m_bytes_in_ = opts_.metrics->counter("net.bytes_in");
    m_bytes_out_ = opts_.metrics->counter("net.bytes_out");
    m_requests_active_ = opts_.metrics->gauge("net.requests_active");
    m_request_ns_ = opts_.metrics->histogram("net.request_ns");
  }
}

Result<std::unique_ptr<NetServer>> NetServer::Start(Server* server,
                                                    NetServerOptions opts) {
  if (server == nullptr) {
    return Status::InvalidArgument("NetServer::Start requires a Server");
  }
  std::unique_ptr<NetServer> ns(new NetServer(server, opts));
  GRAPHLOG_RETURN_NOT_OK(ns->Listen());
  ns->acceptor_ = std::thread([raw = ns.get()] { raw->AcceptLoop(); });
  return ns;
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      opts_.bind_any ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::Internal(
        std::string("bind(port ") + std::to_string(opts_.port) +
        ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, opts_.accept_backlog) < 0) {
    const Status st = Status::Internal(std::string("listen() failed: ") +
                                       std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const Status st = Status::Internal(std::string("getsockname() failed: ") +
                                       std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void NetServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the acceptor out of accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Cancel in-flight work and force every handler out of recv().
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->cancel.Cancel();
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void NetServer::ReapFinished() {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

// ---------------------------------------------------------------------------
// Accept loop + connection admission

void NetServer::AcceptLoop() {
  while (!stopped_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopped_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure (ECONNABORTED etc.)
    }
    if (stopped_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    ReapFinished();

    if (opts_.faults != nullptr) {
      const Status f = opts_.faults->Hit(kNetAccept);
      if (!f.ok()) {
        // Count before answering: a client that observes the refusal
        // must find it already reflected in rejected()/net.rejected.
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        if (m_rejected_ != nullptr) m_rejected_->Increment();
        SendFrame(fd, ErrorFrame(f), m_bytes_out_);
        ::close(fd);
        continue;
      }
    }

    // Connection-level shedding: deterministic, bounded, never queued.
    const size_t cur = active_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (opts_.max_connections != 0 && cur > opts_.max_connections) {
      active_.fetch_sub(1, std::memory_order_acq_rel);
      const Status shed = Status::Overloaded(
          "connection limit (" + std::to_string(opts_.max_connections) +
          ") reached; retry after " + std::to_string(opts_.retry_after_ms) +
          "ms");
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      if (m_rejected_ != nullptr) m_rejected_->Increment();
      SendFrame(fd, ErrorFrame(shed, opts_.retry_after_ms), m_bytes_out_);
      ::close(fd);
      continue;
    }
    if (m_connections_ != nullptr) m_connections_->Add(1);
    if (m_accepted_ != nullptr) m_accepted_->Increment();

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

// ---------------------------------------------------------------------------
// Per-connection handler

Frame NetServer::ErrorFrame(const Status& s, uint32_t retry_after_ms) const {
  Frame f;
  f.type = MsgType::kError;
  EncodeError(StatusToWireError(s, retry_after_ms), &f.body);
  return f;
}

void NetServer::HandleConnection(Conn* conn) {
  std::unique_ptr<Session> session;

  // Handshake: the first frame must be a compatible kHello.
  bool handshaken = false;
  {
    Result<Frame> first = RecvFrame(conn->fd, m_bytes_in_);
    if (first.ok() && first->type == MsgType::kHello) {
      WireHello hello;
      const Status st = DecodeHello(first->body, &hello);
      if (!st.ok()) {
        SendFrame(conn->fd, ErrorFrame(st), m_bytes_out_);
      } else if (hello.version != kProtocolVersion) {
        SendFrame(conn->fd,
                  ErrorFrame(Status::Unsupported(
                      "protocol version " + std::to_string(hello.version) +
                      " (this server speaks " +
                      std::to_string(kProtocolVersion) + ")")),
                  m_bytes_out_);
      } else {
        Frame ok;
        ok.type = MsgType::kHelloOk;
        EncodeHello(WireHello{kProtocolVersion}, &ok.body);
        handshaken = SendFrame(conn->fd, ok, m_bytes_out_).ok();
      }
    } else if (first.ok()) {
      SendFrame(conn->fd,
                ErrorFrame(Status::InvalidArgument(
                    "expected a hello frame to open the connection")),
                m_bytes_out_);
    } else if (!IsCleanClose(first.status())) {
      SendFrame(conn->fd, ErrorFrame(first.status()), m_bytes_out_);
    }
  }

  while (handshaken && !stopped_.load(std::memory_order_acquire) &&
         !conn->cancel.cancelled()) {
    if (opts_.faults != nullptr &&
        !opts_.faults->Hit(kNetRead, &conn->cancel).ok()) {
      break;  // injected read failure: drop the connection
    }
    Result<Frame> req = RecvFrame(conn->fd, m_bytes_in_);
    if (!req.ok()) {
      // Protocol errors get one best-effort error frame; a clean close
      // or a torn stream just ends the connection.
      if (!IsCleanClose(req.status())) {
        SendFrame(conn->fd, ErrorFrame(req.status()), m_bytes_out_);
      }
      break;
    }

    const uint64_t t0 = NowNanos();
    bool close_after = false;
    Frame resp = Dispatch(*req, conn, &session, &close_after);
    if (m_request_ns_ != nullptr) {
      m_request_ns_->Observe(static_cast<int64_t>(NowNanos() - t0));
    }

    if (opts_.faults != nullptr &&
        !opts_.faults->Hit(kNetWrite, &conn->cancel).ok()) {
      break;  // injected write failure: client sees a dropped connection
    }
    if (!SendFrame(conn->fd, resp, m_bytes_out_).ok()) break;
    if (close_after) break;
  }

  // The session (and its private database) dies with its connection.
  session.reset();
  ::shutdown(conn->fd, SHUT_RDWR);
  active_.fetch_sub(1, std::memory_order_acq_rel);
  if (m_connections_ != nullptr) m_connections_->Add(-1);
  conn->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Request dispatch

Frame NetServer::Dispatch(const Frame& req, Conn* conn,
                          std::unique_ptr<Session>* session,
                          bool* close_after) {
  switch (req.type) {
    case MsgType::kPing: {
      Frame resp;
      resp.type = MsgType::kPong;
      return resp;
    }

    case MsgType::kOpenSession: {
      if (*session != nullptr) {
        return ErrorFrame(Status::AlreadyExists(
            "this connection already has session '" + (*session)->name() +
            "'"));
      }
      WireSessionOpen open;
      Status st = DecodeSessionOpen(req.body, &open);
      if (!st.ok()) {
        *close_after = true;
        return ErrorFrame(st);
      }
      SessionOptions sopts;
      sopts.name = open.name;
      sopts.budget = open.budget.any() ? open.budget : opts_.default_budget;
      sopts.deadline_ms =
          open.deadline_ms != 0 ? open.deadline_ms : opts_.default_deadline_ms;
      Result<std::unique_ptr<Session>> opened =
          server_->OpenSession(std::move(sopts));
      if (!opened.ok()) return ErrorFrame(opened.status());
      *session = std::move(*opened);
      Frame resp;
      resp.type = MsgType::kSessionOpened;
      EncodeSessionInfo(
          WireSessionInfo{(*session)->name(), (*session)->epoch()},
          &resp.body);
      return resp;
    }

    case MsgType::kQuery: {
      if (*session == nullptr) {
        return ErrorFrame(Status::InvalidArgument(
            "no session on this connection; open one first"));
      }
      WireQuery q;
      Status st = DecodeQuery(req.body, &q);
      if (!st.ok()) {
        *close_after = true;
        return ErrorFrame(st);
      }
      // Query-level shedding: bounded in-flight work, shed past the cap.
      const size_t inflight =
          inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (opts_.max_inflight_queries != 0 &&
          inflight > opts_.max_inflight_queries) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        if (m_rejected_ != nullptr) m_rejected_->Increment();
        return ErrorFrame(
            Status::Overloaded(
                "query limit (" +
                std::to_string(opts_.max_inflight_queries) +
                ") in flight; retry after " +
                std::to_string(opts_.retry_after_ms) + "ms"),
            opts_.retry_after_ms);
      }
      if (m_requests_active_ != nullptr) m_requests_active_->Add(1);

      QueryRequest qr = q.language == 1 ? QueryRequest::Datalog(q.text)
                                        : QueryRequest::GraphLog(q.text);
      qr.options.eval.num_threads = q.num_threads == 0 ? 1 : q.num_threads;
      qr.options.eval.columnar = q.columnar;
      qr.options.translation.specialize_bound_closures =
          q.specialize_bound_closures;
      qr.options.observability.explain = q.explain;

      gov::GovernorContext ctx;
      ctx.token = conn->cancel;
      ctx.budget = q.budget.any() ? q.budget : opts_.default_budget;
      const uint64_t deadline_ms =
          q.deadline_ms != 0 ? q.deadline_ms : opts_.default_deadline_ms;
      if (deadline_ms != 0) ctx.deadline = gov::Deadline::AfterMillis(deadline_ms);
      ctx.faults = opts_.faults;
      qr.options.eval.governor = &ctx;

      Result<QueryResponse> run = (*session)->Run(std::move(qr));

      if (m_requests_active_ != nullptr) m_requests_active_->Add(-1);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);

      if (!run.ok()) return ErrorFrame(run.status());
      WireQueryResult out;
      out.tuples_derived = run->stats.datalog.tuples_derived;
      out.graphs_translated = run->stats.graphs_translated;
      out.graphs_summarized = run->stats.graphs_summarized;
      out.result_tuples = run->stats.result_tuples;
      out.epoch = (*session)->epoch();
      out.truncated = run->truncated;
      out.cache_hit = run->cache_hit;
      out.served_from_view = run->served_from_view;
      out.truncated_by = run->truncated_by;
      out.explain = run->explain;
      Frame resp;
      resp.type = MsgType::kQueryResult;
      EncodeQueryResult(out, &resp.body);
      return resp;
    }

    case MsgType::kApplyBatch: {
      if (*session == nullptr) {
        return ErrorFrame(Status::InvalidArgument(
            "no session on this connection; open one first"));
      }
      WriteBatch batch;
      std::vector<std::string> files;
      Status st = durability::BatchCodec::Decode(req.body, &batch, &files);
      if (!st.ok()) {
        *close_after = true;
        return ErrorFrame(st);
      }
      if (WireBatchAccess::HasLoadFile(batch) || !files.empty()) {
        // A remote path name must never be read on this filesystem; the
        // client captures file bytes at its end (protocol.h).
        return ErrorFrame(Status::InvalidArgument(
            "wire batches must not carry load-file ops; the client "
            "captures file contents as facts"));
      }
      const size_t inflight =
          inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (opts_.max_inflight_queries != 0 &&
          inflight > opts_.max_inflight_queries) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        if (m_rejected_ != nullptr) m_rejected_->Increment();
        return ErrorFrame(
            Status::Overloaded(
                "query limit (" +
                std::to_string(opts_.max_inflight_queries) +
                ") in flight; retry after " +
                std::to_string(opts_.retry_after_ms) + "ms"),
            opts_.retry_after_ms);
      }
      if (m_requests_active_ != nullptr) m_requests_active_->Add(1);

      gov::GovernorContext ctx;
      ctx.token = conn->cancel;
      ctx.budget = opts_.default_budget;
      if (opts_.default_deadline_ms != 0) {
        ctx.deadline = gov::Deadline::AfterMillis(opts_.default_deadline_ms);
      }
      ctx.faults = opts_.faults;

      Result<size_t> applied = (*session)->Apply(batch, &ctx);

      if (m_requests_active_ != nullptr) m_requests_active_->Add(-1);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);

      if (!applied.ok()) return ErrorFrame(applied.status());
      Frame resp;
      resp.type = MsgType::kApplyResult;
      EncodeApplyResult(WireApplyResult{*applied, (*session)->epoch()},
                        &resp.body);
      return resp;
    }

    case MsgType::kRefresh: {
      if (*session == nullptr) {
        return ErrorFrame(Status::InvalidArgument(
            "no session on this connection; open one first"));
      }
      const Status st = (*session)->Refresh();
      if (!st.ok()) return ErrorFrame(st);
      Frame resp;
      resp.type = MsgType::kRefreshed;
      EncodeSessionInfo(
          WireSessionInfo{(*session)->name(), (*session)->epoch()},
          &resp.body);
      return resp;
    }

    case MsgType::kFetchRelation: {
      if (*session == nullptr) {
        return ErrorFrame(Status::InvalidArgument(
            "no session on this connection; open one first"));
      }
      Cursor c{req.body};
      std::string name;
      if (!c.GetStr(&name) || !c.done()) {
        *close_after = true;
        return ErrorFrame(
            Status::InvalidArgument("malformed fetch-relation body"));
      }
      storage::Database& db = (*session)->database();
      const Symbol sym = db.symbols().Lookup(name);
      if (sym == kNoSymbol || db.Find(sym) == nullptr) {
        return ErrorFrame(
            Status::NotFound("relation '" + name + "' does not exist"));
      }
      Frame resp;
      resp.type = MsgType::kRelationData;
      PutStr(&resp.body, db.RelationToString(sym));
      return resp;
    }

    case MsgType::kListRelations: {
      if (*session == nullptr) {
        return ErrorFrame(Status::InvalidArgument(
            "no session on this connection; open one first"));
      }
      const storage::Database& db = (*session)->database();
      std::vector<WireRelationInfo> infos;
      for (const auto& [sym, rel] : db.relations()) {
        WireRelationInfo info;
        info.name = std::string(db.symbols().name(sym));
        info.arity = static_cast<uint32_t>(rel.arity());
        info.rows = rel.size();
        infos.push_back(std::move(info));
      }
      Frame resp;
      resp.type = MsgType::kRelationList;
      EncodeRelationList(infos, &resp.body);
      return resp;
    }

    case MsgType::kCloseSession: {
      session->reset();
      Frame resp;
      resp.type = MsgType::kSessionClosed;
      return resp;
    }

    default: {
      // Responses (kHelloOk, kQueryResult, ...) and a second kHello are
      // not valid requests.
      *close_after = true;
      return ErrorFrame(Status::InvalidArgument(
          "frame type " + std::to_string(static_cast<int>(req.type)) +
          " is not a request"));
    }
  }
}

}  // namespace graphlog::net
