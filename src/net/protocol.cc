#include "net/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "durability/wal.h"

namespace graphlog::net {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed frame body: " + what);
}

constexpr char kCleanCloseMsg[] = "peer closed the connection";

}  // namespace

// ---------------------------------------------------------------------------
// Wire primitives

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out->append(b, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool Cursor::GetU8(uint8_t* v) {
  if (data.size() - pos < 1) return false;
  *v = static_cast<uint8_t>(data[pos]);
  pos += 1;
  return true;
}

bool Cursor::GetU16(uint16_t* v) {
  if (data.size() - pos < 2) return false;
  std::memcpy(v, data.data() + pos, 2);
  pos += 2;
  return true;
}

bool Cursor::GetU32(uint32_t* v) {
  if (data.size() - pos < 4) return false;
  std::memcpy(v, data.data() + pos, 4);
  pos += 4;
  return true;
}

bool Cursor::GetU64(uint64_t* v) {
  if (data.size() - pos < 8) return false;
  std::memcpy(v, data.data() + pos, 8);
  pos += 8;
  return true;
}

bool Cursor::GetStr(std::string* s) {
  uint32_t n = 0;
  if (!GetU32(&n)) return false;
  if (data.size() - pos < n) return false;
  s->assign(data.data() + pos, n);
  pos += n;
  return true;
}

// ---------------------------------------------------------------------------
// Body codecs

namespace {

void PutBudget(std::string* out, const gov::ResourceBudget& b) {
  PutU64(out, b.max_result_rows);
  PutU64(out, b.max_delta_rows);
  PutU64(out, b.max_rounds);
  PutU64(out, b.max_bytes);
  PutU8(out, b.return_partial ? 1 : 0);
}

bool GetBudget(Cursor* c, gov::ResourceBudget* b) {
  uint8_t partial = 0;
  if (!c->GetU64(&b->max_result_rows) || !c->GetU64(&b->max_delta_rows) ||
      !c->GetU64(&b->max_rounds) || !c->GetU64(&b->max_bytes) ||
      !c->GetU8(&partial)) {
    return false;
  }
  b->return_partial = partial != 0;
  return true;
}

bool GetBool(Cursor* c, bool* v) {
  uint8_t b = 0;
  if (!c->GetU8(&b)) return false;
  *v = b != 0;
  return true;
}

}  // namespace

void EncodeHello(const WireHello& m, std::string* body) {
  PutU32(body, m.version);
}

Status DecodeHello(std::string_view body, WireHello* m) {
  Cursor c{body};
  if (!c.GetU32(&m->version)) return Malformed("truncated hello");
  if (!c.done()) return Malformed("trailing bytes after hello");
  return Status::OK();
}

void EncodeSessionOpen(const WireSessionOpen& m, std::string* body) {
  PutStr(body, m.name);
  PutBudget(body, m.budget);
  PutU64(body, m.deadline_ms);
}

Status DecodeSessionOpen(std::string_view body, WireSessionOpen* m) {
  Cursor c{body};
  if (!c.GetStr(&m->name) || !GetBudget(&c, &m->budget) ||
      !c.GetU64(&m->deadline_ms)) {
    return Malformed("truncated session-open");
  }
  if (!c.done()) return Malformed("trailing bytes after session-open");
  return Status::OK();
}

void EncodeSessionInfo(const WireSessionInfo& m, std::string* body) {
  PutStr(body, m.name);
  PutU64(body, m.epoch);
}

Status DecodeSessionInfo(std::string_view body, WireSessionInfo* m) {
  Cursor c{body};
  if (!c.GetStr(&m->name) || !c.GetU64(&m->epoch)) {
    return Malformed("truncated session-info");
  }
  if (!c.done()) return Malformed("trailing bytes after session-info");
  return Status::OK();
}

void EncodeQuery(const WireQuery& m, std::string* body) {
  PutU8(body, m.language);
  PutStr(body, m.text);
  PutU32(body, m.num_threads);
  PutU8(body, m.columnar ? 1 : 0);
  PutU8(body, m.specialize_bound_closures ? 1 : 0);
  PutU8(body, m.explain ? 1 : 0);
  PutBudget(body, m.budget);
  PutU64(body, m.deadline_ms);
}

Status DecodeQuery(std::string_view body, WireQuery* m) {
  Cursor c{body};
  if (!c.GetU8(&m->language) || !c.GetStr(&m->text) ||
      !c.GetU32(&m->num_threads) || !GetBool(&c, &m->columnar) ||
      !GetBool(&c, &m->specialize_bound_closures) ||
      !GetBool(&c, &m->explain) || !GetBudget(&c, &m->budget) ||
      !c.GetU64(&m->deadline_ms)) {
    return Malformed("truncated query");
  }
  if (m->language > 1) {
    return Malformed("unknown query language " +
                     std::to_string(m->language));
  }
  if (!c.done()) return Malformed("trailing bytes after query");
  return Status::OK();
}

void EncodeQueryResult(const WireQueryResult& m, std::string* body) {
  PutU64(body, m.tuples_derived);
  PutU64(body, m.graphs_translated);
  PutU64(body, m.graphs_summarized);
  PutU64(body, m.result_tuples);
  PutU64(body, m.epoch);
  PutU8(body, m.truncated ? 1 : 0);
  PutU8(body, m.cache_hit ? 1 : 0);
  PutU8(body, m.served_from_view ? 1 : 0);
  PutStr(body, m.truncated_by);
  PutStr(body, m.explain);
}

Status DecodeQueryResult(std::string_view body, WireQueryResult* m) {
  Cursor c{body};
  if (!c.GetU64(&m->tuples_derived) || !c.GetU64(&m->graphs_translated) ||
      !c.GetU64(&m->graphs_summarized) || !c.GetU64(&m->result_tuples) ||
      !c.GetU64(&m->epoch) || !GetBool(&c, &m->truncated) ||
      !GetBool(&c, &m->cache_hit) || !GetBool(&c, &m->served_from_view) ||
      !c.GetStr(&m->truncated_by) || !c.GetStr(&m->explain)) {
    return Malformed("truncated query-result");
  }
  if (!c.done()) return Malformed("trailing bytes after query-result");
  return Status::OK();
}

void EncodeApplyResult(const WireApplyResult& m, std::string* body) {
  PutU64(body, m.facts);
  PutU64(body, m.epoch);
}

Status DecodeApplyResult(std::string_view body, WireApplyResult* m) {
  Cursor c{body};
  if (!c.GetU64(&m->facts) || !c.GetU64(&m->epoch)) {
    return Malformed("truncated apply-result");
  }
  if (!c.done()) return Malformed("trailing bytes after apply-result");
  return Status::OK();
}

void EncodeRelationList(const std::vector<WireRelationInfo>& m,
                        std::string* body) {
  PutU32(body, static_cast<uint32_t>(m.size()));
  for (const WireRelationInfo& r : m) {
    PutStr(body, r.name);
    PutU32(body, r.arity);
    PutU64(body, r.rows);
  }
}

Status DecodeRelationList(std::string_view body,
                          std::vector<WireRelationInfo>* m) {
  Cursor c{body};
  uint32_t n = 0;
  if (!c.GetU32(&n)) return Malformed("truncated relation-list count");
  m->clear();
  for (uint32_t i = 0; i < n; ++i) {
    WireRelationInfo r;
    if (!c.GetStr(&r.name) || !c.GetU32(&r.arity) || !c.GetU64(&r.rows)) {
      return Malformed("truncated relation-list entry");
    }
    m->push_back(std::move(r));
  }
  if (!c.done()) return Malformed("trailing bytes after relation-list");
  return Status::OK();
}

void EncodeError(const WireError& m, std::string* body) {
  PutU16(body, static_cast<uint16_t>(m.code));
  PutStr(body, m.message);
  PutU32(body, m.retry_after_ms);
}

Status DecodeError(std::string_view body, WireError* m) {
  Cursor c{body};
  uint16_t code = 0;
  if (!c.GetU16(&code) || !c.GetStr(&m->message) ||
      !c.GetU32(&m->retry_after_ms)) {
    return Malformed("truncated error frame");
  }
  if (!c.done()) return Malformed("trailing bytes after error frame");
  m->code = static_cast<StatusCode>(code);
  return Status::OK();
}

Status WireErrorToStatus(const WireError& e) {
  // Codes above the newest this build knows come from a newer peer;
  // preserve the message but degrade the code to something actionable.
  if (e.code == StatusCode::kOk ||
      static_cast<int>(e.code) > static_cast<int>(StatusCode::kOverloaded)) {
    return Status::Internal("remote error with unknown code " +
                            std::to_string(static_cast<int>(e.code)) + ": " +
                            e.message);
  }
  return Status(e.code, e.message);
}

WireError StatusToWireError(const Status& s, uint32_t retry_after_ms) {
  WireError e;
  e.code = s.code();
  e.message = s.message();
  e.retry_after_ms = retry_after_ms;
  return e;
}

// ---------------------------------------------------------------------------
// Batch access

bool WireBatchAccess::HasLoadFile(const WriteBatch& batch) {
  for (const WriteBatch::Op& op : batch.ops_) {
    if (op.kind == WriteBatch::Op::kLoadFile) return true;
  }
  return false;
}

Result<WriteBatch> WireBatchAccess::CaptureLoadFiles(const WriteBatch& batch) {
  WriteBatch out;
  for (const WriteBatch::Op& op : batch.ops_) {
    if (op.kind != WriteBatch::Op::kLoadFile) {
      out.ops_.push_back(op);
      continue;
    }
    std::ifstream in(op.text, std::ios::binary);
    if (!in.is_open()) {
      return Status::NotFound("cannot read fact file '" + op.text +
                              "' for remote apply");
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad()) {
      return Status::Internal("failed reading fact file '" + op.text + "'");
    }
    out.Facts(contents.str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Frame I/O

std::string SerializeFrame(const Frame& frame) {
  std::string payload;
  payload.reserve(2 + frame.body.size());
  PutU8(&payload, kProtocolVersion);
  PutU8(&payload, static_cast<uint8_t>(frame.type));
  payload += frame.body;
  std::string bytes;
  bytes.reserve(8 + payload.size());
  PutU32(&bytes, static_cast<uint32_t>(payload.size()));
  PutU32(&bytes, durability::Crc32(payload.data(), payload.size()));
  bytes += payload;
  return bytes;
}

namespace {

/// Writes all of `data`, retrying short writes and EINTR. MSG_NOSIGNAL:
/// a peer that vanished mid-write surfaces as EPIPE, not SIGPIPE.
Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof_at_start` is set when the peer closed
/// before the first byte (a clean close at a frame boundary when called
/// for a header).
Status ReadAll(int fd, char* buf, size_t len, bool* eof_at_start) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::NotFound(kCleanCloseMsg);
      }
      return Status::CorruptedLog("connection closed mid-frame (" +
                                  std::to_string(got) + " of " +
                                  std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const Frame& frame, obs::Counter* bytes_out) {
  const std::string bytes = SerializeFrame(frame);
  GRAPHLOG_RETURN_NOT_OK(WriteAll(fd, bytes));
  if (bytes_out != nullptr) bytes_out->Add(bytes.size());
  return Status::OK();
}

Result<Frame> RecvFrame(int fd, obs::Counter* bytes_in) {
  char header[8];
  bool clean_eof = false;
  Status st = ReadAll(fd, header, 8, &clean_eof);
  if (!st.ok()) return st;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFrameBytes) +
                                   "-byte limit");
  }
  std::string payload(len, '\0');
  st = ReadAll(fd, payload.data(), len, nullptr);
  if (!st.ok()) return st;
  if (bytes_in != nullptr) bytes_in->Add(8 + static_cast<uint64_t>(len));
  if (durability::Crc32(payload.data(), payload.size()) != crc) {
    return Status::CorruptedLog("frame CRC mismatch");
  }
  Cursor c{payload};
  uint8_t version = 0;
  uint8_t type = 0;
  if (!c.GetU8(&version) || !c.GetU8(&type)) {
    return Status::CorruptedLog("frame too short for version + type");
  }
  if (version != kProtocolVersion) {
    return Status::Unsupported("protocol version " + std::to_string(version) +
                               " (this peer speaks " +
                               std::to_string(kProtocolVersion) + ")");
  }
  if (type > static_cast<uint8_t>(MsgType::kError)) {
    return Status::Unsupported("unknown frame type " + std::to_string(type));
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.body = payload.substr(2);
  return frame;
}

bool IsCleanClose(const Status& s) {
  return s.code() == StatusCode::kNotFound && s.message() == kCleanCloseMsg;
}

}  // namespace graphlog::net
