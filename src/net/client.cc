#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "durability/wal.h"

namespace graphlog::net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::NotFound("cannot resolve '" + host +
                            "': " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::NotFound("no address resolved for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Internal("connect to " + host + ":" +
                            std::to_string(port) +
                            " failed: " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<Client> client(new Client(fd));
  Frame hello;
  hello.type = MsgType::kHello;
  EncodeHello(WireHello{kProtocolVersion}, &hello.body);
  GRAPHLOG_ASSIGN_OR_RETURN(Frame ok,
                            client->RoundTrip(hello, MsgType::kHelloOk));
  WireHello server_hello;
  GRAPHLOG_RETURN_NOT_OK(DecodeHello(ok.body, &server_hello));
  if (server_hello.version != kProtocolVersion) {
    return Status::Unsupported(
        "server speaks protocol version " +
        std::to_string(server_hello.version) + ", this client speaks " +
        std::to_string(kProtocolVersion));
  }
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> Client::RoundTrip(const Frame& req, MsgType expect) {
  if (fd_ < 0) return Status::Internal("client connection is closed");
  Status st = SendFrame(fd_, req, nullptr);
  if (!st.ok()) {
    Close();
    return st;
  }
  Result<Frame> resp = RecvFrame(fd_, nullptr);
  if (!resp.ok()) {
    Close();
    if (IsCleanClose(resp.status())) {
      return Status::Internal("server closed the connection");
    }
    return resp.status();
  }
  if (resp->type == MsgType::kError) {
    WireError err;
    GRAPHLOG_RETURN_NOT_OK(DecodeError(resp->body, &err));
    last_retry_after_ms_ =
        err.code == StatusCode::kOverloaded ? err.retry_after_ms : 0;
    return WireErrorToStatus(err);
  }
  last_retry_after_ms_ = 0;
  if (resp->type != expect) {
    Close();  // the stream is out of step; nothing later can be trusted
    return Status::Internal(
        "unexpected response frame type " +
        std::to_string(static_cast<int>(resp->type)) + " (wanted " +
        std::to_string(static_cast<int>(expect)) + ")");
  }
  return resp;
}

Result<WireSessionInfo> Client::OpenSession(const WireSessionOpen& opts) {
  Frame req;
  req.type = MsgType::kOpenSession;
  EncodeSessionOpen(opts, &req.body);
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp,
                            RoundTrip(req, MsgType::kSessionOpened));
  WireSessionInfo info;
  GRAPHLOG_RETURN_NOT_OK(DecodeSessionInfo(resp.body, &info));
  return info;
}

Result<WireQueryResult> Client::Run(const WireQuery& query) {
  Frame req;
  req.type = MsgType::kQuery;
  EncodeQuery(query, &req.body);
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp, RoundTrip(req, MsgType::kQueryResult));
  WireQueryResult out;
  GRAPHLOG_RETURN_NOT_OK(DecodeQueryResult(resp.body, &out));
  return out;
}

Result<WireApplyResult> Client::Apply(const WriteBatch& batch) {
  // Capture-at-source: any kLoadFile op is read HERE and shipped as
  // facts, so the server never resolves a path on its filesystem.
  const WriteBatch* to_send = &batch;
  WriteBatch captured;
  if (WireBatchAccess::HasLoadFile(batch)) {
    GRAPHLOG_ASSIGN_OR_RETURN(captured,
                              WireBatchAccess::CaptureLoadFiles(batch));
    to_send = &captured;
  }
  Frame req;
  req.type = MsgType::kApplyBatch;
  GRAPHLOG_RETURN_NOT_OK(
      durability::BatchCodec::Encode(*to_send, {}, &req.body));
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp, RoundTrip(req, MsgType::kApplyResult));
  WireApplyResult out;
  GRAPHLOG_RETURN_NOT_OK(DecodeApplyResult(resp.body, &out));
  return out;
}

Result<WireSessionInfo> Client::Refresh() {
  Frame req;
  req.type = MsgType::kRefresh;
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp, RoundTrip(req, MsgType::kRefreshed));
  WireSessionInfo info;
  GRAPHLOG_RETURN_NOT_OK(DecodeSessionInfo(resp.body, &info));
  return info;
}

Result<std::string> Client::FetchRelation(const std::string& name) {
  Frame req;
  req.type = MsgType::kFetchRelation;
  PutStr(&req.body, name);
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp,
                            RoundTrip(req, MsgType::kRelationData));
  Cursor c{resp.body};
  std::string text;
  if (!c.GetStr(&text) || !c.done()) {
    return Status::InvalidArgument("malformed relation-data body");
  }
  return text;
}

Result<std::vector<WireRelationInfo>> Client::ListRelations() {
  Frame req;
  req.type = MsgType::kListRelations;
  GRAPHLOG_ASSIGN_OR_RETURN(Frame resp,
                            RoundTrip(req, MsgType::kRelationList));
  std::vector<WireRelationInfo> infos;
  GRAPHLOG_RETURN_NOT_OK(DecodeRelationList(resp.body, &infos));
  return infos;
}

Status Client::CloseSession() {
  Frame req;
  req.type = MsgType::kCloseSession;
  return RoundTrip(req, MsgType::kSessionClosed).status();
}

Status Client::Ping() {
  Frame req;
  req.type = MsgType::kPing;
  return RoundTrip(req, MsgType::kPong).status();
}

}  // namespace graphlog::net
