// graphlogd: the standalone GraphLog server daemon.
//
// Owns one Server (in-memory, or durable when --dir is given), wraps it
// in a NetServer, and serves the framed wire protocol until SIGINT/
// SIGTERM. Remote clients (net/client.h, or the shell's `.connect`)
// open sessions against it with the exact in-process Session semantics.
//
// Usage:
//   graphlogd [--port N] [--dir PATH] [--fsync always|group|off]
//             [--facts FILE] [--bind-any]
//             [--max-connections N] [--max-inflight N]
//             [--retry-after-ms N] [--deadline-ms N] [--max-rows N]
//
//   --port N            listen port (default 4242; 0 = ephemeral)
//   --dir PATH          durable mode: WAL + checkpoints under PATH
//   --fsync POLICY      durable mode fsync policy (default always)
//   --facts FILE        seed the database from a fact file at startup
//   --bind-any          bind 0.0.0.0 instead of loopback
//   --max-connections N admission: concurrent connections (default 64)
//   --max-inflight N    admission: queries in flight, 0 = unlimited
//   --retry-after-ms N  retry advice on kOverloaded sheds (default 100)
//   --deadline-ms N     default per-request deadline, 0 = none
//   --max-rows N        default per-request result-row budget, 0 = none

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "durability/fsync_policy.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "storage/io.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--dir PATH] [--fsync always|group|off]\n"
      "          [--facts FILE] [--bind-any] [--max-connections N]\n"
      "          [--max-inflight N] [--retry-after-ms N] [--deadline-ms N]\n"
      "          [--max-rows N]\n",
      argv0);
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphlog;

  uint64_t port = 4242;
  std::string dir;
  std::string facts_file;
  durability::FsyncPolicy fsync = durability::FsyncPolicy::kAlways;
  net::NetServerOptions nopts;
  nopts.max_connections = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](uint64_t* out) {
      if (i + 1 >= argc || !ParseUint(argv[++i], out)) {
        std::fprintf(stderr, "%s: %s needs an unsigned integer\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--port") {
      next(&port);
      if (port > 65535) {
        std::fprintf(stderr, "%s: --port out of range\n", argv[0]);
        return 2;
      }
    } else if (arg == "--dir") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      dir = argv[++i];
    } else if (arg == "--fsync") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      auto parsed = durability::ParseFsyncPolicy(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[0],
                     parsed.status().ToString().c_str());
        return 2;
      }
      fsync = *parsed;
    } else if (arg == "--facts") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      facts_file = argv[++i];
    } else if (arg == "--bind-any") {
      nopts.bind_any = true;
    } else if (arg == "--max-connections") {
      uint64_t v = 0;
      next(&v);
      nopts.max_connections = v;
    } else if (arg == "--max-inflight") {
      uint64_t v = 0;
      next(&v);
      nopts.max_inflight_queries = v;
    } else if (arg == "--retry-after-ms") {
      uint64_t v = 0;
      next(&v);
      nopts.retry_after_ms = static_cast<uint32_t>(v);
    } else if (arg == "--deadline-ms") {
      next(&nopts.default_deadline_ms);
    } else if (arg == "--max-rows") {
      next(&nopts.default_budget.max_result_rows);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  obs::MetricsRegistry metrics;
  nopts.metrics = &metrics;
  nopts.port = static_cast<uint16_t>(port);

  ServerOptions sopts;
  sopts.metrics = &metrics;

  std::unique_ptr<Server> server;
  if (!dir.empty()) {
    DurabilityOptions dur;
    dur.fsync = fsync;
    auto opened = Server::Open(dir, sopts, dur);
    if (!opened.ok()) {
      std::fprintf(stderr, "graphlogd: cannot open '%s': %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    server = std::move(*opened);
    std::fprintf(stderr, "graphlogd: durable store at %s (fsync=%s), epoch %llu\n",
                 dir.c_str(), std::string(durability::FsyncPolicyName(fsync)).c_str(),
                 static_cast<unsigned long long>(server->epoch()));
  } else {
    server = std::make_unique<Server>(sopts);
  }

  if (!facts_file.empty()) {
    WriteBatch seed;
    seed.LoadFile(facts_file);
    auto applied = server->Apply(seed);
    if (!applied.ok()) {
      std::fprintf(stderr, "graphlogd: cannot seed from '%s': %s\n",
                   facts_file.c_str(), applied.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "graphlogd: seeded %llu facts from %s\n",
                 static_cast<unsigned long long>(*applied),
                 facts_file.c_str());
  }

  auto net = net::NetServer::Start(server.get(), nopts);
  if (!net.ok()) {
    std::fprintf(stderr, "graphlogd: cannot listen: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "graphlogd: listening on %s:%u\n",
               nopts.bind_any ? "0.0.0.0" : "127.0.0.1", (*net)->port());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "graphlogd: shutting down\n");
  (*net)->Stop();
  return 0;
}
