// Client: the blocking remote counterpart of server/server.h's Session.
//
// A Client holds one TCP connection to a NetServer and mirrors the
// Session surface — OpenSession / Run / Apply / Refresh plus relation
// fetches — over the framed protocol (net/protocol.h). Because the
// server executes remote requests through the very same Session code
// path an in-process caller uses, results observed through a Client are
// bit-identical to in-process ones: the same epochs, the same stats,
// the same Status taxonomy on failure (a remote kBudgetExceeded arrives
// as kBudgetExceeded, and an admission-control rejection arrives as
// kOverloaded with last_retry_after_ms() holding the server's advice).
//
// One request in flight at a time: a Client is single-caller, exactly
// like the Session it fronts. Open one Client per thread.

#ifndef GRAPHLOG_NET_CLIENT_H_
#define GRAPHLOG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"

namespace graphlog::net {

/// \brief A blocking connection to one NetServer, fronting one Session.
class Client {
 public:
  /// \brief Connects to `host:port` and performs the version handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();  ///< Closes the connection.
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Opens this connection's session (at most one). Empty name =
  /// server assigns; zero budget/deadline = server defaults.
  Result<WireSessionInfo> OpenSession(const WireSessionOpen& opts = {});

  /// \brief Runs one query on the remote session. Mirrors Session::Run.
  Result<WireQueryResult> Run(const WireQuery& query);

  /// \brief Commits `batch` through the remote session (mirrors
  /// Session::Apply). kLoadFile ops are captured here — the file is read
  /// on THIS machine and shipped as facts; the server never touches its
  /// own filesystem on our behalf.
  Result<WireApplyResult> Apply(const WriteBatch& batch);

  /// \brief Re-pins the remote session to the head snapshot.
  Result<WireSessionInfo> Refresh();

  /// \brief Fetches one relation's rows as fact text ("rel(a, b)." lines,
  /// the Database::RelationToString rendering).
  Result<std::string> FetchRelation(const std::string& name);

  /// \brief Lists relations visible to the remote session.
  Result<std::vector<WireRelationInfo>> ListRelations();

  /// \brief Closes the remote session (the connection stays usable).
  Status CloseSession();

  Status Ping();

  /// \brief Severs the connection; every later call fails. Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// \brief Retry advice from the most recent kOverloaded rejection (ms);
  /// 0 when the last error carried none.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends `req` and reads the one response frame, unwrapping kError
  /// frames into their Status. `expect` is the success frame type.
  Result<Frame> RoundTrip(const Frame& req, MsgType expect);

  int fd_ = -1;
  uint32_t last_retry_after_ms_ = 0;
};

}  // namespace graphlog::net

#endif  // GRAPHLOG_NET_CLIENT_H_
