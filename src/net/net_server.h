// NetServer: the TCP front door over server/server.h.
//
// One NetServer wraps one Server. An acceptor thread takes connections
// off a bounded listen backlog; each admitted connection gets a handler
// thread running a read-dispatch-write loop that speaks the framed
// protocol (net/protocol.h) and owns at most one Session. The thread
// population is bounded by max_connections, so the pool of handler
// threads can never grow past the admission limit — query-internal
// parallelism stays where it already lives, in the engine's exec pool
// (WireQuery::num_threads).
//
// Connection handlers never touch the Server's writer mutex from their
// read loop: queries run against the connection's own Session (pinned
// snapshot, private database), and only an explicit kApplyBatch takes
// the commit path. Responses are written by the same handler thread
// that read the request — one in-flight request per connection, no
// shared writer state between connections.
//
// Admission control (gov-backed, deterministic — shed, never queue
// unboundedly):
//   * accept backlog: the kernel listen queue is bounded by
//     accept_backlog; SYN floods past it never reach us.
//   * max_connections: a connection accepted past the cap is answered
//     with one kOverloaded error frame carrying retry_after_ms, then
//     closed. net.rejected counts it.
//   * max_inflight_queries: kQuery/kApplyBatch past the cap get a
//     kOverloaded error frame with retry advice; the connection stays
//     open. net.rejected counts these too.
//   * per-request governor: every query/apply runs under a
//     GovernorContext combining the connection's cancellation token
//     (Stop() cancels in-flight work), the request's budget/deadline
//     when set, and the server-wide defaults when not.
//
// Fault sites (gov/fault_injection.h): net.accept fires after a
// connection is accepted (fail => error frame + close, counted as
// rejected); net.read before each request frame is read (fail => the
// handler closes as if the peer vanished); net.write before each
// response frame (fail => close, the client sees a dropped
// connection). All three make the degraded-network paths testable
// deterministically.
//
// Metrics (when NetServerOptions::metrics is set): net.connections
// (gauge, currently open), net.accepted / net.rejected / net.bytes_in /
// net.bytes_out (counters), net.requests_active (gauge),
// net.request_ns (histogram over full request handling).

#ifndef GRAPHLOG_NET_NET_SERVER_H_
#define GRAPHLOG_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "gov/governor.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace graphlog::net {

/// \brief Admission and transport configuration for one NetServer.
struct NetServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Bind INADDR_ANY instead of loopback. Default stays loopback: this
  /// protocol carries no authentication, so exposure is opt-in.
  bool bind_any = false;
  /// Kernel listen-queue bound (the first shedding layer).
  int accept_backlog = 64;
  /// Connections handled concurrently; one accepted past the cap is
  /// answered kOverloaded + retry_after_ms and closed. 0 = unlimited.
  size_t max_connections = 64;
  /// Queries/applies in flight across all connections; one past the cap
  /// is answered kOverloaded (connection stays open). 0 = unlimited.
  size_t max_inflight_queries = 0;
  /// Retry-after advice carried on every kOverloaded rejection.
  uint32_t retry_after_ms = 100;
  /// Default per-request budget for requests that carry none.
  gov::ResourceBudget default_budget;
  /// Default per-request deadline (ms) for requests that carry none;
  /// 0 = none.
  uint64_t default_deadline_ms = 0;
  /// net.* metrics land here. Null disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault injector consulted at net.accept / net.read / net.write and
  /// passed into every request's governor. Null disables.
  gov::FaultInjector* faults = nullptr;
};

/// \brief TCP listener serving one Server over the framed protocol.
///
/// Thread-safe: Start/Stop/port/stats may be called from any thread;
/// connection handling runs on internal threads. The wrapped Server
/// must outlive the NetServer (Stop() joins every handler first).
class NetServer {
 public:
  /// \brief Creates, binds, and starts a listener over `server`.
  static Result<std::unique_ptr<NetServer>> Start(Server* server,
                                                  NetServerOptions opts = {});

  ~NetServer();  ///< Stops if still running.
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// \brief The bound port (resolves opts.port == 0).
  uint16_t port() const { return port_; }

  /// \brief Cancels in-flight requests, closes every connection, joins
  /// all threads. Idempotent.
  void Stop();

  bool running() const { return !stopped_.load(std::memory_order_acquire); }

  /// \brief Connections currently being handled.
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// \brief Total connections shed + requests shed by admission control.
  uint64_t rejected() const {
    return rejected_count_.load(std::memory_order_relaxed);
  }

 private:
  /// One handled connection: its socket, handler thread, session, and
  /// the cancellation token Stop() trips.
  struct Conn {
    int fd = -1;
    std::thread thread;
    gov::CancellationToken cancel;
    std::atomic<bool> done{false};
  };

  NetServer(Server* server, NetServerOptions opts);

  Status Listen();
  void AcceptLoop();
  void HandleConnection(Conn* conn);

  /// Dispatches one decoded request frame on `conn`'s session state.
  /// Returns the response frame to write; connection-fatal conditions
  /// set *close_after.
  Frame Dispatch(const Frame& req, Conn* conn,
                 std::unique_ptr<Session>* session, bool* close_after);

  Frame ErrorFrame(const Status& s, uint32_t retry_after_ms = 0) const;

  /// Joins handler threads that have finished (called from the acceptor
  /// between accepts, and from Stop for the stragglers).
  void ReapFinished();

  Server* server_;
  NetServerOptions opts_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopped_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<size_t> active_{0};
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> rejected_count_{0};

  // Metric handles (null when opts_.metrics is null).
  obs::Gauge* m_connections_ = nullptr;
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Gauge* m_requests_active_ = nullptr;
  obs::HistogramCell* m_request_ns_ = nullptr;
};

}  // namespace graphlog::net

#endif  // GRAPHLOG_NET_NET_SERVER_H_
