// The GraphLog wire protocol: versioned, length-prefixed, CRC-checked
// frames carrying the Session API over a byte stream.
//
// Everything below the wire already exists — epoch-snapshot Server/
// Session, governor budgets, WAL durability — so the protocol's job is
// narrow: move Session operations (open/refresh/close, queries, write
// batches, relation fetches) between a remote Client and a NetServer
// with the exact in-process semantics, so remote results are
// bit-identical to local ones.
//
// Frame format (little-endian, same framing discipline as the WAL):
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = [u8 protocol_version][u8 msg_type][body]
//
// A frame whose declared extent outruns the stream, or a stream that
// ends mid-frame, is a clean close from the peer's perspective; a frame
// whose CRC fails, whose version is unknown, or whose declared length
// exceeds kMaxFrameBytes is a protocol error — the server answers with
// an error frame when it still can, then closes. Body decoders are
// bounds-checked cursors (the WAL codec idiom): a checksum-valid but
// logically malformed body is an error, never a wild read.
//
// Versioning: every frame carries its protocol version byte. Version 1
// peers require an exact match; the kHello/kHelloOk exchange is where a
// future version negotiates down. Message-type values and the layout of
// existing bodies are frozen once released — new fields append behind a
// version bump.
//
// Error taxonomy on the wire: an error frame carries the full StatusCode
// enum as a u16 plus the message, so kCancelled / kDeadlineExceeded /
// kBudgetExceeded / kParseError / ... round-trip to the remote caller
// exactly as an in-process caller would see them. kOverloaded errors
// additionally carry a retry_after_ms hint — the admission controller's
// deterministic load-shedding advice (net_server.h).
//
// WriteBatches reuse the durability layer's BatchCodec for their wire
// body. kLoadFile ops never cross the wire: the Client captures the
// file's bytes locally and ships them as a kFacts op (the same
// capture-at-source contract WAL replay and session fast-forward
// honor), and the server rejects any kLoadFile op it receives — a
// remote path name must never be read on the server's filesystem.

#ifndef GRAPHLOG_NET_PROTOCOL_H_
#define GRAPHLOG_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "gov/governor.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace graphlog::net {

/// \brief Protocol revision this build speaks. v1 peers require equality.
inline constexpr uint8_t kProtocolVersion = 1;

/// \brief Upper bound on one frame's payload; a declared length past it
/// is a protocol error, not an allocation.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// \brief Frame type tags. Values are wire format — append, never renumber.
enum class MsgType : uint8_t {
  kHello = 0,          ///< client -> server: version handshake
  kHelloOk = 1,        ///< server -> client: handshake accepted
  kOpenSession = 2,    ///< open one session on this connection
  kSessionOpened = 3,  ///< session name + pinned epoch
  kQuery = 4,          ///< run one query on the connection's session
  kQueryResult = 5,    ///< stats/flags/explain of a completed query
  kApplyBatch = 6,     ///< commit one WriteBatch (BatchCodec body)
  kApplyResult = 7,    ///< facts inserted + committed epoch
  kRefresh = 8,        ///< re-pin the session to the head snapshot
  kRefreshed = 9,      ///< new pinned epoch
  kFetchRelation = 10, ///< fetch one relation's rows as fact text
  kRelationData = 11,  ///< the fetched text
  kListRelations = 12, ///< list relations visible to the session
  kRelationList = 13,  ///< (name, arity, rows) per relation
  kCloseSession = 14,  ///< close the connection's session
  kSessionClosed = 15,
  kPing = 16,
  kPong = 17,
  kError = 18,         ///< StatusCode + message (+ retry-after advice)
};

/// \brief One decoded frame: the type tag plus the raw body bytes.
struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

// ---------------------------------------------------------------------------
// Wire primitives — little-endian, bounds-checked. Shared by every body
// codec and reusable by tests that craft malformed frames on purpose.

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutStr(std::string* out, std::string_view s);

/// \brief Bounds-checked reader over an encoded body; every Get fails
/// (returns false) rather than reading past the buffer.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetStr(std::string* s);
  bool done() const { return pos == data.size(); }
};

// ---------------------------------------------------------------------------
// Message bodies.

/// \brief kHello / kHelloOk body.
struct WireHello {
  uint32_t version = kProtocolVersion;
};

/// \brief kOpenSession body: the remote half of SessionOptions. A zero
/// budget/deadline defers to the server's per-connection defaults
/// (NetServerOptions); a set one overrides them for this session.
struct WireSessionOpen {
  std::string name;  ///< empty = server auto-assigns
  gov::ResourceBudget budget;
  uint64_t deadline_ms = 0;
};

/// \brief kSessionOpened / kRefreshed body.
struct WireSessionInfo {
  std::string name;
  uint64_t epoch = 0;
};

/// \brief kQuery body: the remote projection of QueryRequest. Only knobs
/// that change *what* runs cross the wire; observability stays
/// server-side (metrics/slow-log are the operator's, not the client's).
struct WireQuery {
  uint8_t language = 0;  ///< 0 = GraphLog, 1 = Datalog
  std::string text;
  uint32_t num_threads = 1;
  bool columnar = false;
  bool specialize_bound_closures = false;
  bool explain = false;  ///< return the EXPLAIN rendering too
  gov::ResourceBudget budget;  ///< zero fields defer to server defaults
  uint64_t deadline_ms = 0;    ///< 0 defers to the server default
};

/// \brief kQueryResult body: the remote projection of QueryResponse.
struct WireQueryResult {
  uint64_t tuples_derived = 0;
  uint64_t graphs_translated = 0;
  uint64_t graphs_summarized = 0;
  uint64_t result_tuples = 0;
  uint64_t epoch = 0;  ///< session epoch the query ran at
  bool truncated = false;
  bool cache_hit = false;
  bool served_from_view = false;
  std::string truncated_by;
  std::string explain;
};

/// \brief kApplyResult body.
struct WireApplyResult {
  uint64_t facts = 0;
  uint64_t epoch = 0;  ///< committed epoch
};

/// \brief One row of a kRelationList body.
struct WireRelationInfo {
  std::string name;
  uint32_t arity = 0;
  uint64_t rows = 0;
};

/// \brief kError body: the Status taxonomy on the wire. retry_after_ms
/// is nonzero only for kOverloaded — the admission controller's hint.
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  uint32_t retry_after_ms = 0;
};

// Body codecs. Encode appends to *body; Decode requires the body to be
// exactly one encoded message (trailing bytes are an error).
void EncodeHello(const WireHello& m, std::string* body);
Status DecodeHello(std::string_view body, WireHello* m);
void EncodeSessionOpen(const WireSessionOpen& m, std::string* body);
Status DecodeSessionOpen(std::string_view body, WireSessionOpen* m);
void EncodeSessionInfo(const WireSessionInfo& m, std::string* body);
Status DecodeSessionInfo(std::string_view body, WireSessionInfo* m);
void EncodeQuery(const WireQuery& m, std::string* body);
Status DecodeQuery(std::string_view body, WireQuery* m);
void EncodeQueryResult(const WireQueryResult& m, std::string* body);
Status DecodeQueryResult(std::string_view body, WireQueryResult* m);
void EncodeApplyResult(const WireApplyResult& m, std::string* body);
Status DecodeApplyResult(std::string_view body, WireApplyResult* m);
void EncodeRelationList(const std::vector<WireRelationInfo>& m,
                        std::string* body);
Status DecodeRelationList(std::string_view body,
                          std::vector<WireRelationInfo>* m);
void EncodeError(const WireError& m, std::string* body);
Status DecodeError(std::string_view body, WireError* m);

/// \brief Rebuilds the Status an error frame carries. An unknown code
/// (from a newer peer) degrades to kInternal with the message preserved.
Status WireErrorToStatus(const WireError& e);

/// \brief Projects a non-OK Status into an error frame body.
WireError StatusToWireError(const Status& s, uint32_t retry_after_ms = 0);

// ---------------------------------------------------------------------------
// Batch access for the wire.

/// \brief Befriended by WriteBatch: translates batches for the wire.
struct WireBatchAccess {
  /// True when `batch` holds a kLoadFile op (servers reject these).
  static bool HasLoadFile(const WriteBatch& batch);
  /// Returns a copy of `batch` with every kLoadFile op replaced by a
  /// kFacts op holding the file's bytes, read here (the client side) —
  /// the capture-at-source contract. Fails if a file cannot be read.
  static Result<WriteBatch> CaptureLoadFiles(const WriteBatch& batch);
  /// Number of ops in the batch (for reporting).
  static size_t OpCount(const WriteBatch& batch) { return batch.size(); }
};

// ---------------------------------------------------------------------------
// Frame I/O over a connected socket.

/// \brief Serializes one frame (header + version + type + body) into the
/// exact bytes SendFrame would write. Exposed so tests can mutate them.
std::string SerializeFrame(const Frame& frame);

/// \brief Writes one frame to `fd`, handling short writes and EINTR.
/// Counts the bytes into `bytes_out` when non-null.
Status SendFrame(int fd, const Frame& frame, obs::Counter* bytes_out);

/// \brief Reads one frame from `fd`. Counts bytes into `bytes_in` when
/// non-null. Outcomes:
///   * OK — a checksum-valid frame of this protocol version.
///   * a status for which IsCleanClose() holds — the peer closed at a
///     frame boundary (normal disconnect).
///   * kCorruptedLog — mid-frame EOF or CRC mismatch.
///   * kInvalidArgument — declared length past kMaxFrameBytes.
///   * kUnsupported — version byte mismatch.
Result<Frame> RecvFrame(int fd, obs::Counter* bytes_in);

/// \brief True when a RecvFrame error means "peer closed cleanly".
bool IsCleanClose(const Status& s);

}  // namespace graphlog::net

#endif  // GRAPHLOG_NET_PROTOCOL_H_
