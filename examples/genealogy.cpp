// Genealogy: Figures 2, 3 and 5 of the paper.
//
// Builds the "descendants of P1 which are not descendants of P2" query
// graph both programmatically (the Definition 2.3 API) and from text,
// shows that both translate to the Figure 3 Datalog program, evaluates on
// a generated family forest, and runs the Figure 5 "local family friends"
// p.r.e. query.
//
// Build & run:  ./build/examples/genealogy

#include <cstdio>

#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/pre.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using datalog::Term;

int main() {
  storage::Database db;
  workload::FamilyOptions fam;
  fam.generations = 4;
  fam.roots = 2;
  fam.friend_prob = 0.03;
  if (auto s = workload::Family(fam, &db); !s.ok()) {
    std::fprintf(stderr, "generator failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("family database: %zu tuples\n", db.TotalTuples());

  // --- Figure 2, built with the programmatic API. -------------------------
  SymbolTable& syms = db.symbols();
  gl::QueryGraph fig2;
  // Nodes P1, P3, P2 (P2 carries the `person` node predicate).
  gl::QueryNode p1, p2, p3;
  p1.label = {Term::Var(syms.Intern("P1"))};
  p3.label = {Term::Var(syms.Intern("P3"))};
  p2.label = {Term::Var(syms.Intern("P2"))};
  p2.predicates.push_back({/*positive=*/true, syms.Intern("person")});
  fig2.nodes = {p1, p3, p2};

  gl::QueryEdge desc;  // P1 -> P3 : descendant+
  desc.from = 0;
  desc.to = 1;
  desc.expr = gl::PathExpr::Plus(gl::PathExpr::Atom(syms.Intern("descendant")));
  gl::QueryEdge ndesc;  // P2 -> P3 : !descendant+
  ndesc.from = 2;
  ndesc.to = 1;
  ndesc.expr = gl::PathExpr::Negate(
      gl::PathExpr::Plus(gl::PathExpr::Atom(syms.Intern("descendant"))));
  fig2.edges = {desc, ndesc};

  fig2.distinguished.from = 0;
  fig2.distinguished.to = 1;
  fig2.distinguished.predicate = syms.Intern("not-desc-of");
  fig2.distinguished.params = {
      datalog::HeadTerm::Plain(Term::Var(syms.Intern("P2")))};

  std::printf("\n=== Figure 2 query graph (programmatic) ===\n%s",
              fig2.ToString(syms).c_str());

  auto fig3 = gl::TranslateQueryGraph(fig2, &syms);
  if (!fig3.ok()) {
    std::fprintf(stderr, "translate: %s\n", fig3.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== its lambda translation (Figure 3) ===\n%s",
              fig3->program.ToString(syms).c_str());

  gl::GraphicalQuery q;
  q.graphs.push_back(fig2);
  auto resp = graphlog::Run(QueryRequest::Graphical(q), &db);
  if (!resp.ok()) {
    std::fprintf(stderr, "eval: %s\n", resp.status().ToString().c_str());
    return 1;
  }
  const storage::Relation* res = db.Find("not-desc-of");
  std::printf("\nnot-desc-of holds %zu facts; first few:\n", res->size());
  int shown = 0;
  for (const auto& t : res->rows()) {
    if (++shown > 5) break;
    std::printf("  not-desc-of(%s, %s, %s)\n", t[0].ToString(syms).c_str(),
                t[1].ToString(syms).c_str(), t[2].ToString(syms).c_str());
  }

  // --- Figure 5: friends of me or of my ancestors living in city0. --------
  const char* fig5 =
      "query local-friend {\n"
      "  edge P -> F : (-(father | mother(_)))* friend;\n"
      "  edge F -> \"city0\" : residence;\n"
      "  distinguished P -> F : local-friend;\n"
      "}\n";
  std::printf("\n=== Figure 5 query ===\n%s", fig5);
  auto s5 = graphlog::Run(QueryRequest::GraphLog(fig5), &db);
  if (!s5.ok()) {
    std::fprintf(stderr, "eval: %s\n", s5.status().ToString().c_str());
    return 1;
  }
  std::printf("local-friend: %zu facts\n", db.Find("local-friend")->size());
  return 0;
}
