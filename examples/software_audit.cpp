// Software audit: Figure 6 of the paper on a generated call graph.
//
// Finds modules that (a) use the async-io library directly or indirectly
// and (b) call themselves through other modules — the paper's example of a
// "real life" recursive query over a software repository.
//
// Build & run:  ./build/examples/software_audit [num_modules]

#include <cstdio>
#include <cstdlib>

#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;

int main(int argc, char** argv) {
  workload::ModulesOptions opts;
  if (argc > 1) opts.num_modules = std::atoi(argv[1]);
  storage::Database db;
  if (auto s = workload::Modules(opts, &db); !s.ok()) {
    std::fprintf(stderr, "generator failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("call graph: %d modules, %zu in-module, %zu local, %zu "
              "external calls\n",
              opts.num_modules, db.Find("in-module")->size(),
              db.Find("calls-local")->size(), db.Find("calls-extn")->size());

  // lib0 plays the role of the paper's async-io library.
  const char* query =
      "query module-calls {\n"
      "  edge M1 -> M2 : -(in-module) (calls-local)* calls-extn in-module;\n"
      "  distinguished M1 -> M2 : module-calls;\n"
      "}\n"
      "query uses-async {\n"
      "  edge M -> F : -(in-module) (calls-local | calls-extn)+;\n"
      "  edge F -> \"lib0\" : in-library;\n"
      "  distinguished M -> M : uses-async;\n"
      "}\n"
      "query self-used {\n"
      "  edge M -> M : module-calls+;\n"
      "  edge M -> M : uses-async;\n"
      "  distinguished M -> M : self-used;\n"
      "}\n";
  std::printf("\n=== Figure 6 graphical query ===\n%s\n", query);

  auto resp = graphlog::Run(QueryRequest::GraphLog(query), &db);
  if (!resp.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  const gl::QueryStats& stats = resp->stats;

  std::printf("module-calls (module-level call edges):\n%s",
              db.RelationToString(db.Intern("module-calls")).c_str());
  std::printf("\nself-used modules (circular + using lib0):\n%s",
              db.RelationToString(db.Intern("self-used")).c_str());
  std::printf("\n(%llu tuples derived in %llu fixpoint rounds)\n",
              static_cast<unsigned long long>(stats.datalog.tuples_derived),
              static_cast<unsigned long long>(stats.datalog.iterations));
  return 0;
}
