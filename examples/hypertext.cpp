// Hypertext: structural queries over a hypertext web ([CM89], Section 5).
//
// The paper's prototype could query the Neptune/HAM hypertext server;
// this example generates a hypertext web and runs the kinds of structural
// queries [CM89] describes: reachability between pages, pages co-authored
// along a link path, unreachable pages, and an RPQ evaluated directly on
// the graph with qualifying edges highlighted in DOT — the prototype's
// answer-display mode.
//
// Build & run:  ./build/examples/hypertext [num_pages]

#include <cstdio>
#include <cstdlib>

#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "ham/ham.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;

int main(int argc, char** argv) {
  workload::HypertextOptions opts;
  if (argc > 1) opts.num_pages = std::atoi(argv[1]);
  storage::Database db;
  if (auto s = workload::Hypertext(opts, &db); !s.ok()) {
    std::fprintf(stderr, "generator failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("hypertext web: %d pages, %zu links\n", opts.num_pages,
              db.Find("link")->size());

  // GraphLog structural queries.
  const char* query =
      "query reachable {\n"
      "  edge P1 -> P2 : link+;\n"
      "  distinguished P1 -> P2 : reachable;\n"
      "}\n"
      "query orphan {\n"
      "  edge P -> A : author;\n"
      "  edge \"page0\" -> P : !(link+ | =);\n"
      "  distinguished P -> A : orphan;\n"
      "}\n"
      // Pages reachable from page0 whose every step stays with one author:
      // the closure parameter threads the author along the path.
      "query same-author-path {\n"
      "  edge P1 -> P2 : authored-link(A)+;\n"
      "  distinguished P1 -> P2 : same-author-path(A);\n"
      "}\n"
      "query authored-link {\n"
      "  edge P1 -> P2 : link;\n"
      "  edge P1 -> A : author;\n"
      "  edge P2 -> A : author;\n"
      "  distinguished P1 -> P2 : authored-link(A);\n"
      "}\n";
  std::printf("\n=== graphical query ===\n%s\n", query);
  auto stats = graphlog::Run(QueryRequest::GraphLog(query), &db);
  if (!stats.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("reachable pairs:        %zu\n", db.Find("reachable")->size());
  std::printf("orphan pages (x auth):  %zu\n", db.Find("orphan")->size());
  std::printf("same-author path pairs: %zu\n",
              db.Find("same-author-path")->size());

  // RPQ on the graph, prototype-style: pages reachable from page0 in
  // 2..3 hops, with the qualifying edges highlighted in DOT.
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  rpq::RpqOptions ropts;
  ropts.source = Value::Sym(db.Intern("page0"));
  auto hops = rpq::EvalRpqText(g, "link link link?", &db.symbols(), ropts);
  if (!hops.ok()) {
    std::fprintf(stderr, "rpq failed: %s\n",
                 hops.status().ToString().c_str());
    return 1;
  }
  std::printf("\npages 2-3 link-hops from page0: %zu\n", hops->size());

  // Highlight the direct links out of page0 (the first hop of every
  // qualifying path) on the database graph.
  graph::DotOptions dot;
  dot.graph_name = "web";
  graph::NodeId p0;
  if (g.FindNode(Value::Sym(db.Intern("page0")), &p0)) {
    for (uint32_t ei : g.OutEdges(p0)) dot.highlight_edges.push_back(ei);
  }
  std::printf("\nDOT with highlighted answer frontier written to stdout "
              "(truncated preview):\n");
  std::string d = ToDot(g, db.symbols(), dot);
  std::printf("%.600s...\n", d.c_str());

  // --- The full Section 5 stack: HAM -> export -> GraphLog. ---------------
  // Build a small versioned web inside the transaction-based store, edit
  // it, then query both the current and a historical version.
  ham::Ham store;
  auto ck = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "ham: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  ck(store.Begin());
  auto home = *store.CreateNode("home");
  auto docs = *store.CreateNode("docs");
  auto api = *store.CreateNode("api");
  ck(store.CreateLink(home, docs, "link").status());
  ck(store.CreateLink(docs, api, "link").status());
  ck(store.Commit().status());  // version 1
  ck(store.Begin());
  ck(store.Destroy(api));  // the API page is retired in version 2
  ck(store.Commit().status());

  storage::Database now_db, then_db;
  ck(store.Export(&now_db));
  ck(store.Export(&then_db, ham::Version{1}));
  const char* reach_q =
      "query reach { edge X -> Y : link+; distinguished X -> Y : reach; }";
  ck(graphlog::Run(QueryRequest::GraphLog(reach_q), &now_db).status());
  ck(graphlog::Run(QueryRequest::GraphLog(reach_q), &then_db).status());
  std::printf(
      "\nHAM-backed store: reach pairs now=%zu, at version 1=%zu "
      "(the retired api page is only reachable in history)\n",
      now_db.Find("reach")->size(), then_db.Find("reach")->size());
  return 0;
}
