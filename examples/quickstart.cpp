// Quickstart: the paper's running example end to end, through the
// Server/Session front door.
//
// Loads the exact flight-schedule database of Figure 1 as one atomic
// write batch, runs the Figure 4 graphical query (feasible connections,
// then cities connected by a sequence of at least two feasible flights)
// against the session's snapshot, prints the translated Datalog, the
// results, a taste of epoch isolation, and a DOT rendering of the
// database graph.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "storage/io.h"
#include "workload/generators.h"

using namespace graphlog;

int main() {
  // 1. A server owning the database, and a session pinned to its head
  //    snapshot. The Figure 1 database commits as one atomic batch.
  Server server;
  auto opened = server.OpenSession({.name = "demo"});
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Session>& session = *opened;

  storage::Database figure1;
  if (auto s = workload::Figure1Flights(&figure1); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (auto r = session->Apply(WriteBatch().Facts(storage::DumpFacts(figure1)));
      !r.ok()) {
    std::fprintf(stderr, "commit failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  storage::Database& db = session->database();
  std::printf("=== Figure 1 flight database (epoch %llu) ===\n",
              static_cast<unsigned long long>(session->epoch()));
  for (const char* rel : {"from", "to", "departure", "arrival", "capital"}) {
    std::printf("%s", db.RelationToString(db.Intern(rel)).c_str());
  }

  // 2. The Figure 4 graphical query, in the textual surface syntax.
  const char* query_text =
      "query feasible {\n"
      "  edge F1 -> A1 : arrival;\n"
      "  edge F2 -> D2 : departure;\n"
      "  edge A1 -> D2 : <;\n"
      "  edge F1 -> C : to;\n"
      "  edge F2 -> C : from;\n"
      "  distinguished F1 -> F2 : feasible;\n"
      "}\n"
      "query stop-connected {\n"
      "  edge C1 -> C2 : (-from) feasible+ to;\n"
      "  distinguished C1 -> C2 : stop-connected;\n"
      "}\n";
  std::printf("\n=== Graphical query (Figure 4) ===\n%s", query_text);

  // 3. Show the lambda translation (Definition 2.4).
  auto parsed = gl::ParseGraphicalQuery(query_text, &db.symbols());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto translation = gl::Translate(*parsed, &db.symbols());
  if (!translation.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 translation.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== lambda translation to stratified Datalog ===\n%s",
              translation->program.ToString(db.symbols()).c_str());

  // 4. Evaluate against the session's snapshot, with tracing on: one
  //    QueryRequest in, one QueryResponse (stats + trace) out.
  QueryRequest req = QueryRequest::Graphical(*parsed);
  req.options.observability.tracing = true;
  auto resp = session->Run(req);
  if (!resp.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Results ===\n");
  std::printf("%s", db.RelationToString(db.Intern("feasible")).c_str());
  std::printf("%s",
              db.RelationToString(db.Intern("stop-connected")).c_str());
  const gl::QueryStats& stats = resp->stats;
  std::printf(
      "\n(%llu tuples derived, %llu rule firings, %llu fixpoint rounds)\n",
      static_cast<unsigned long long>(stats.datalog.tuples_derived),
      static_cast<unsigned long long>(stats.datalog.rule_firings),
      static_cast<unsigned long long>(stats.datalog.iterations));

  // 5. Epoch isolation in four lines: a session opened now pins this
  //    epoch; a later commit is invisible to it until Refresh().
  auto pinned = server.OpenSession({.name = "pinned"});
  if (pinned.ok()) {
    (void)session->Apply(WriteBatch().Insert("capital", {"atlantis"}));
    std::printf(
        "\n=== Snapshot isolation ===\n"
        "writer at epoch %llu sees %zu capitals; pinned reader at epoch "
        "%llu still sees %zu\n",
        static_cast<unsigned long long>(session->epoch()),
        db.Find("capital")->size(),
        static_cast<unsigned long long>((*pinned)->epoch()),
        (*pinned)->database().Find("capital")->size());
  }

  // 6. The trace: a span tree of the whole pipeline (parse, translate,
  //    stratify, per-stratum fixpoint rounds) plus run-level counters.
  std::printf("\n=== Trace (.trace in the shell; ToJson() for export) ===\n%s",
              resp->trace.ToText().c_str());

  // 7. DOT rendering of the database graph (the prototype's display
  //    window, Section 5).
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  graph::DotOptions dot_opts;
  dot_opts.graph_name = "flights";
  std::printf("\n=== DOT (render with `dot -Tpng`) ===\n%s",
              ToDot(g, db.symbols(), dot_opts).c_str());
  return 0;
}
