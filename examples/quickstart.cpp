// Quickstart: the paper's running example end to end.
//
// Loads the exact flight-schedule database of Figure 1, runs the
// Figure 4 graphical query (feasible connections, then cities connected by
// a sequence of at least two feasible flights), prints the translated
// Datalog, the results, and a DOT rendering of the database graph.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;

int main() {
  storage::Database db;

  // 1. The Figure 1 database.
  if (auto s = workload::Figure1Flights(&db); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("=== Figure 1 flight database ===\n");
  for (const char* rel : {"from", "to", "departure", "arrival", "capital"}) {
    std::printf("%s", db.RelationToString(db.Intern(rel)).c_str());
  }

  // 2. The Figure 4 graphical query, in the textual surface syntax.
  const char* query_text =
      "query feasible {\n"
      "  edge F1 -> A1 : arrival;\n"
      "  edge F2 -> D2 : departure;\n"
      "  edge A1 -> D2 : <;\n"
      "  edge F1 -> C : to;\n"
      "  edge F2 -> C : from;\n"
      "  distinguished F1 -> F2 : feasible;\n"
      "}\n"
      "query stop-connected {\n"
      "  edge C1 -> C2 : (-from) feasible+ to;\n"
      "  distinguished C1 -> C2 : stop-connected;\n"
      "}\n";
  std::printf("\n=== Graphical query (Figure 4) ===\n%s", query_text);

  // 3. Show the lambda translation (Definition 2.4).
  auto parsed = gl::ParseGraphicalQuery(query_text, &db.symbols());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto translation = gl::Translate(*parsed, &db.symbols());
  if (!translation.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 translation.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== lambda translation to stratified Datalog ===\n%s",
              translation->program.ToString(db.symbols()).c_str());

  // 4. Evaluate through the unified API, with tracing on: one
  //    QueryRequest in, one QueryResponse (stats + trace) out.
  QueryRequest req = QueryRequest::Graphical(*parsed);
  req.options.observability.tracing = true;
  auto resp = Run(req, &db);
  if (!resp.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Results ===\n");
  std::printf("%s", db.RelationToString(db.Intern("feasible")).c_str());
  std::printf("%s",
              db.RelationToString(db.Intern("stop-connected")).c_str());
  const gl::QueryStats& stats = resp->stats;
  std::printf(
      "\n(%llu tuples derived, %llu rule firings, %llu fixpoint rounds)\n",
      static_cast<unsigned long long>(stats.datalog.tuples_derived),
      static_cast<unsigned long long>(stats.datalog.rule_firings),
      static_cast<unsigned long long>(stats.datalog.iterations));

  // 5. The trace: a span tree of the whole pipeline (parse, translate,
  //    stratify, per-stratum fixpoint rounds) plus run-level counters.
  std::printf("\n=== Trace (.trace in the shell; ToJson() for export) ===\n%s",
              resp->trace.ToText().c_str());

  // 6. DOT rendering of the database graph (the prototype's display
  //    window, Section 5).
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  graph::DotOptions dot_opts;
  dot_opts.graph_name = "flights";
  std::printf("\n=== DOT (render with `dot -Tpng`) ===\n%s",
              ToDot(g, db.symbols(), dot_opts).c_str());
  return 0;
}
