// graphlog_shell: an interactive GraphLog session.
//
// The textual stand-in for the Section 5 prototype: load a database, type
// graphical queries, inspect answers, and export DOT renderings of both
// the database graph and the query graphs themselves.
//
//   $ ./build/examples/graphlog_shell
//   graphlog> edge(a, b).
//   graphlog> edge(b, c).
//   graphlog> query t { edge X -> Y : edge+; distinguished X -> Y : t; }
//   3 tuples derived
//   graphlog> .show t
//   t(a, b). ...
//
// Commands:
//   <fact>.                    add a ground fact
//   query NAME { ... }         evaluate a graphical query (may span lines)
//   .datalog <rule>            evaluate one Datalog rule
//   .load FILE | .save FILE    fact-file I/O
//   .show REL | .relations     inspect state
//   .dot | .dotquery NAME{...} export DOT (database / query graph)
//   .rpq [SRC [DST]] EXPR      automaton-product RPQ over the data graph
//   .explain NAME { ... }      show translation + plans without evaluating
//   .trace [on|off|json]       toggle tracing / print the last trace
//   .profile [on|off|show]     EXPLAIN ANALYZE profiling of evaluations
//   .metrics [json|prom]       process-wide metrics registry snapshot
//   .slowlog [n|json|...]      inspect / configure the slow-query log
//   .resource                  per-relation row/byte accounting
//   .cache [on|off|...]        query result cache (generation-invalidated)
//   .columnar [on|off]         CSR/bitset evaluation path (bit-identical)
//   .view define NAME { ... }  materialized views, incrementally maintained
//   .session open|list|switch  multiplex epoch-snapshot server sessions
//   .wal on DIR|off|status     durable mode: write-ahead log + checkpoints
//   .checkpoint | .recover     checkpoint now / live crash-recovery drill
//   .serve PORT                serve this shell's server over TCP
//   .connect HOST:PORT         attach to a remote graphlogd
//   .help | .quit
//
// Reads from stdin, so it is scriptable: `graphlog_shell < script.glog`.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GRAPHLOG_SHELL_SIGINT 1
#endif

#include "cache/result_cache.h"
#include "cache/view_catalog.h"
#include "columnar/csr_cache.h"
#include "common/strings.h"
#include "durability/wal.h"
#include "eval/provenance.h"
#include "gov/fault_injection.h"
#include "gov/governor.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "graphlog/dot.h"
#include "graphlog/parser.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "storage/io.h"

using namespace graphlog;

namespace {

// SIGINT plumbing. The first Ctrl-C cancels the in-flight governed query
// (the engine polls the token cooperatively and unwinds with kCancelled);
// the second exits the process. Both state cells are async-signal-safe:
// the counter is a relaxed atomic and CancellationToken::Cancel is one
// relaxed atomic store — no locks, no allocation.
std::atomic<int> g_sigint_count{0};
gov::CancellationToken* g_shell_token = nullptr;

#ifdef GRAPHLOG_SHELL_SIGINT
extern "C" void ShellSigintHandler(int) {
  int n = g_sigint_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= 2) std::_Exit(130);
  if (g_shell_token != nullptr) g_shell_token->Cancel();
  constexpr char kMsg[] = "\n[cancel requested; Ctrl-C again to exit]\n";
  // write(2) is on the async-signal-safe list; printf is not.
  ssize_t ignored = write(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
  (void)ignored;
}

void InstallSigintHandler() {
  struct sigaction sa = {};
  sa.sa_handler = ShellSigintHandler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: the blocking getline on stdin resumes instead of failing
  // with EINTR, so the prompt survives a cancel.
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
}
#else
void InstallSigintHandler() {}
#endif

/// Digits-only uint64 parse; rejects signs, spaces, and overflow-bait.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 18) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  *out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  fact(args).              add a ground fact\n"
      "  query NAME { ... }       evaluate a graphical query\n"
      "  .datalog RULE            evaluate a single Datalog rule\n"
      "  .load FILE               load a fact file\n"
      "  .save FILE               save all relations as facts\n"
      "  .show RELATION           print a relation\n"
      "  .relations               list relations and sizes\n"
      "  .dot                     DOT of the database graph\n"
      "  .dotquery QUERY          DOT of a query graph (visual formalism)\n"
      "  .rpq [SRC [DST]] EXPR    run a regular path query\n"
      "  .explain QUERY           translated rules, strata, and join plans\n"
      "                           of a query, without evaluating it\n"
      "  .trace on|off            enable/disable tracing of evaluations\n"
      "  .trace                   print the last evaluation's trace tree\n"
      "  .trace json              print the last trace as JSON\n"
      "  .profile on|off          collect plan-level execution profiles\n"
      "                           (per-atom probes/rows, dedup, rounds)\n"
      "  .profile show [json]     EXPLAIN ANALYZE of the last profiled\n"
      "                           run (text, or logical-profile JSON)\n"
      "  .metrics [json|prom]     snapshot of the process-wide metrics\n"
      "                           registry (text, JSON, or Prometheus)\n"
      "  .slowlog [N]             last N slow-query records (default all)\n"
      "  .slowlog json            the slow-query log as one JSON document\n"
      "  .slowlog threshold [MS]  show or set the slow-query threshold in\n"
      "                           milliseconds (0 disables capture)\n"
      "  .slowlog clear           drop all retained records\n"
      "  .resource                per-relation row/byte accounting\n"
      "  .why FACT                derivation tree of a fact from the most\n"
      "                           recent query/.datalog evaluation\n"
      "  .threads [N]             show or set evaluation worker lanes\n"
      "                           (1 = serial, 0 = hardware concurrency)\n"
      "  .limit                   show the session's query limits\n"
      "  .limit rows|delta|rounds|bytes N\n"
      "                           cap result rows / per-round delta rows /\n"
      "                           fixpoint rounds / estimated bytes (0 off)\n"
      "  .limit deadline MS       wall-clock deadline per query (0 off)\n"
      "  .limit partial on|off    budget trips truncate instead of failing\n"
      "  .limit clear             drop every limit\n"
      "  .fault [list]            armed fault-injection points\n"
      "  .fault SITE fail [N]     inject a failure at SITE's Nth hit\n"
      "  .fault SITE stall MS [N] stall SITE's Nth hit for MS milliseconds\n"
      "                           (sites: eval.round pool.task tc.expand\n"
      "                           rpq.step io.load csr.build wal.append\n"
      "                           wal.fsync checkpoint.write net.accept\n"
      "                           net.read net.write)\n"
      "  .fault clear             disarm everything\n"
      "  .cache on|off            toggle the query result cache (off by\n"
      "                           default; while on, .why provenance is\n"
      "                           not collected)\n"
      "  .cache [stats]           hit/miss/eviction counters and bytes\n"
      "  .cache clear             drop every cached entry\n"
      "  .columnar on|off         evaluate through the CSR/bitset columnar\n"
      "                           path (off by default; answers are\n"
      "                           bit-identical to the row engine)\n"
      "  .columnar [stats]        CSR snapshot builds/reuses/invalidations\n"
      "  .session                 sessions with epochs; * marks active\n"
      "  .session open [NAME]     open a session pinned to the current\n"
      "                           head snapshot and make it active\n"
      "  .session switch NAME     switch the active session; each one is\n"
      "                           an isolated epoch snapshot\n"
      "  .session refresh         fast-forward the active session to the\n"
      "                           server's head epoch\n"
      "  .wal on DIR              durable mode: every commit appends to\n"
      "                           DIR/wal.log (fsync'd) before its epoch\n"
      "                           publishes; current facts migrate over\n"
      "  .wal off                 back to an in-memory server (state is\n"
      "                           kept but no longer durable)\n"
      "  .wal [status]            log path, size, fsync policy, epoch\n"
      "  .checkpoint              write DIR/checkpoint.db atomically and\n"
      "                           truncate the write-ahead log behind it\n"
      "  .recover                 close the durable server and re-open it\n"
      "                           through checkpoint load + WAL replay —\n"
      "                           a live drill of the crash-restart path\n"
      "  .serve PORT              serve this shell's server over TCP on\n"
      "                           127.0.0.1:PORT (0 = ephemeral); remote\n"
      "                           clients get epoch-snapshot sessions\n"
      "  .serve status            listener address, connections, sheds\n"
      "  .serve stop              stop listening (connections close)\n"
      "  .connect HOST:PORT       attach to a remote graphlogd; facts,\n"
      "                           queries, .datalog, .load, .show, and\n"
      "                           .relations then run on a remote session\n"
      "  .disconnect              drop the remote connection; commands\n"
      "                           run against the local server again\n"
      "  .view define NAME QUERY  materialize a graphical query as view\n"
      "                           NAME, kept fresh incrementally as facts\n"
      "                           arrive; matching queries answer from it\n"
      "  .view [list]             views with sizes and refresh counters\n"
      "  .view refresh [NAME]     force a refresh (all views without NAME)\n"
      "  .view drop NAME          forget a view (its relations remain)\n"
      "  Ctrl-C                   cancel the running query (twice: exit)\n"
      "  .help / .quit / .exit\n");
}

/// Balances braces to decide whether a query block is complete.
bool BlockComplete(const std::string& text) {
  int depth = 0;
  bool seen = false;
  for (char c : text) {
    if (c == '{') {
      ++depth;
      seen = true;
    }
    if (c == '}') --depth;
  }
  return seen && depth <= 0;
}

class Shell {
 public:
  Shell() {
    opts_.observability.metrics = &metrics_;
    opts_.observability.slow_query_log = &slowlog_;
    opts_.cache.views = &views_;
    // Queries slower than 100 ms land in .slowlog by default;
    // `.slowlog threshold MS` tunes it, 0 disables.
    opts_.observability.slow_query_threshold_ns = 100'000'000;
    // First Ctrl-C cancels the in-flight query via this token; the
    // Shell outlives every query, so the handler's pointer stays valid.
    g_shell_token = &cancel_;
    InstallSigintHandler();
    // Every shell runs against an in-process Server; "main" is the
    // default session (an epoch-0 snapshot of the empty database).
    // `.wal on DIR` later swaps in a durable server.
    server_ = std::make_unique<Server>(MakeServerOptions());
    auto main_session = server_->OpenSession({.name = "main"});
    if (!main_session.ok()) {
      std::fprintf(stderr, "fatal: %s\n",
                   main_session.status().ToString().c_str());
      std::exit(1);
    }
    sessions_["main"] = std::move(*main_session);
    active_ = "main";
  }

  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      Handle(line);
      if (done_) break;
      Prompt();
    }
    return 0;
  }

 private:
  /// The active session; `.session switch` retargets it.
  Session& active() { return *sessions_.at(active_); }

  /// The active session's private database — what every read-side
  /// command (.show, .dot, .rpq, queries) sees: the pinned snapshot plus
  /// any session-local derivations.
  storage::Database& db() { return active().database(); }

  void Prompt() {
    if (pending_.empty()) {
      std::printf("graphlog> ");
    } else {
      std::printf("      ... ");
    }
    std::fflush(stdout);
  }

  void Handle(const std::string& raw) {
    std::string line(Trim(raw));
    if (!pending_.empty()) {
      pending_ += "\n" + line;
      if (BlockComplete(pending_)) {
        RunQuery(pending_);
        pending_.clear();
      }
      return;
    }
    if (line.empty() || line[0] == '#') return;
    if (line == ".quit" || line == ".exit") {
      done_ = true;
      return;
    }
    if (line == ".help") {
      PrintHelp();
      return;
    }
    if (line == ".relations") {
      if (remote_ != nullptr) {
        auto infos = remote_->ListRelations();
        if (!infos.ok()) {
          std::printf("error: %s\n", infos.status().ToString().c_str());
          return;
        }
        for (const auto& info : *infos) {
          std::printf("  %s/%u: %llu tuples\n", info.name.c_str(), info.arity,
                      static_cast<unsigned long long>(info.rows));
        }
        return;
      }
      for (const auto& [name, rel] : db().relations()) {
        std::printf("  %s/%zu: %zu tuples\n",
                    db().symbols().name(name).c_str(), rel.arity(),
                    rel.size());
      }
      return;
    }
    if (StartsWith(line, ".show ")) {
      std::string name(Trim(line.substr(6)));
      if (remote_ != nullptr) {
        auto text = remote_->FetchRelation(name);
        if (!text.ok()) {
          std::printf("error: %s\n", text.status().ToString().c_str());
        } else {
          std::printf("%s", text->c_str());
        }
        return;
      }
      Symbol s = db().symbols().Lookup(name);
      if (s == kNoSymbol || db().Find(s) == nullptr) {
        std::printf("no relation '%s'\n", name.c_str());
      } else {
        std::printf("%s", db().RelationToString(s).c_str());
      }
      return;
    }
    if (StartsWith(line, ".load ")) {
      if (remote_ != nullptr) {
        // The Client reads the file HERE and ships its bytes as facts;
        // the server never resolves a path on its own filesystem.
        auto r = remote_->Apply(
            WriteBatch().LoadFile(std::string(Trim(line.substr(6)))));
        Report(r.status(), r.ok() ? r->facts : 0, "facts loaded (remote)");
        return;
      }
      gov::GovernorContext governor = MakeGovernor();
      auto r = active().Apply(
          WriteBatch().LoadFile(std::string(Trim(line.substr(6)))),
          &governor);
      Report(r.status(), r.ok() ? *r : 0, "facts loaded");
      if (r.ok()) RefreshViews();
      return;
    }
    if (StartsWith(line, ".save ")) {
      Status s =
          storage::SaveFactsFile(std::string(Trim(line.substr(6))), db());
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      return;
    }
    if (line == ".dot") {
      graph::DataGraph g = graph::DataGraph::FromDatabase(db());
      std::printf("%s", ToDot(g, db().symbols()).c_str());
      return;
    }
    if (StartsWith(line, ".dotquery ")) {
      std::string text = line.substr(10);
      if (!BlockComplete(text)) {
        pending_dotquery_ = true;
        pending_ = text;
        return;
      }
      DotQuery(text);
      return;
    }
    if (line == ".threads" || StartsWith(line, ".threads ")) {
      if (line == ".threads") {
        std::printf("num_threads = %u\n", opts_.eval.num_threads);
        return;
      }
      std::string arg(Trim(line.substr(9)));
      // Digits only: strtoul would silently wrap a negative sign around.
      bool numeric = !arg.empty() && arg.size() <= 4;
      for (char c : arg) numeric = numeric && c >= '0' && c <= '9';
      if (!numeric) {
        std::printf(
            "usage: .threads [N]   (1 = serial, 0 = hardware, max 9999)\n");
        return;
      }
      opts_.eval.num_threads =
          static_cast<unsigned>(std::strtoul(arg.c_str(), nullptr, 10));
      std::printf("num_threads = %u\n", opts_.eval.num_threads);
      return;
    }
    if (line == ".trace" || StartsWith(line, ".trace ")) {
      HandleTrace(line == ".trace" ? "" : std::string(Trim(line.substr(7))));
      return;
    }
    if (line == ".profile" || StartsWith(line, ".profile ")) {
      HandleProfile(line == ".profile" ? ""
                                       : std::string(Trim(line.substr(9))));
      return;
    }
    if (line == ".metrics" || StartsWith(line, ".metrics ")) {
      HandleMetrics(line == ".metrics" ? ""
                                       : std::string(Trim(line.substr(9))));
      return;
    }
    if (line == ".slowlog" || StartsWith(line, ".slowlog ")) {
      HandleSlowlog(line == ".slowlog" ? ""
                                       : std::string(Trim(line.substr(9))));
      return;
    }
    if (line == ".resource") {
      HandleResource();
      return;
    }
    if (line == ".limit" || StartsWith(line, ".limit ")) {
      HandleLimit(line == ".limit" ? "" : std::string(Trim(line.substr(7))));
      return;
    }
    if (line == ".fault" || StartsWith(line, ".fault ")) {
      HandleFault(line == ".fault" ? "" : std::string(Trim(line.substr(7))));
      return;
    }
    if (line == ".cache" || StartsWith(line, ".cache ")) {
      HandleCache(line == ".cache" ? "" : std::string(Trim(line.substr(7))));
      return;
    }
    if (line == ".columnar" || StartsWith(line, ".columnar ")) {
      HandleColumnar(line == ".columnar"
                         ? ""
                         : std::string(Trim(line.substr(10))));
      return;
    }
    if (line == ".session" || StartsWith(line, ".session ")) {
      HandleSession(line == ".session" ? ""
                                       : std::string(Trim(line.substr(9))));
      return;
    }
    if (line == ".wal" || StartsWith(line, ".wal ")) {
      HandleWal(line == ".wal" ? "" : std::string(Trim(line.substr(5))));
      return;
    }
    if (line == ".checkpoint") {
      HandleCheckpoint();
      return;
    }
    if (line == ".recover") {
      HandleRecover();
      return;
    }
    if (line == ".view" || StartsWith(line, ".view ")) {
      std::string arg(line == ".view" ? "" : Trim(line.substr(6)));
      if (StartsWith(arg, "define ")) {
        std::istringstream in(arg.substr(7));
        std::string name;
        in >> name;
        std::string text;
        std::getline(in, text);
        if (name.empty()) {
          std::printf("usage: .view define NAME QUERY\n");
          return;
        }
        if (!BlockComplete(text)) {
          pending_view_name_ = name;
          // Keep the continuation pump alive even when the query starts
          // on the next line (pending_ must be non-empty).
          pending_ = text.empty() ? " " : text;
          return;
        }
        DefineView(name, text);
        return;
      }
      HandleView(arg);
      return;
    }
    if (StartsWith(line, ".explain ")) {
      std::string text = line.substr(9);
      if (!BlockComplete(text)) {
        pending_explain_ = true;
        pending_ = text;
        return;
      }
      Explain(text);
      return;
    }
    if (line == ".serve" || StartsWith(line, ".serve ")) {
      HandleServe(line == ".serve" ? "" : std::string(Trim(line.substr(7))));
      return;
    }
    if (StartsWith(line, ".connect ")) {
      HandleConnect(std::string(Trim(line.substr(9))));
      return;
    }
    if (line == ".disconnect") {
      if (remote_ == nullptr) {
        std::printf("not connected\n");
        return;
      }
      remote_.reset();
      std::printf("disconnected from %s; commands run locally again\n",
                  remote_addr_.c_str());
      remote_addr_.clear();
      return;
    }
    if (StartsWith(line, ".datalog ")) {
      if (remote_ != nullptr) {
        RemoteQuery(line.substr(9), /*datalog=*/true);
        return;
      }
      last_store_ = eval::ProvenanceStore();
      gov::GovernorContext governor = MakeGovernor();
      QueryRequest req = QueryRequest::Datalog(line.substr(9));
      req.options = opts_;
      // Provenance forces a cache/view bypass (a served answer cannot
      // populate the store), so .why is only collected while the cache
      // is off and no views are defined.
      if (opts_.cache.result_cache == nullptr && views_.size() == 0) {
        req.options.eval.provenance = &last_store_;
      }
      req.options.eval.governor = &governor;
      auto r = active().Run(req);
      if (r.ok()) {
        last_program_ = r->stats.programs;
        last_trace_ = std::move(r->trace);
        if (!r->profile.empty()) last_profile_ = std::move(r->profile);
        if (r->truncated) {
          std::printf("truncated: %s\n", r->truncated_by.c_str());
        }
        if (r->cache_hit) std::printf("(result cache hit)\n");
      }
      Report(r.status(), r.ok() ? r->stats.datalog.tuples_derived : 0,
             "tuples derived");
      return;
    }
    if (StartsWith(line, ".why ")) {
      auto r = eval::ExplainFact(last_store_, last_program_, db().symbols(),
                                 line.substr(5));
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        if (opts_.cache.result_cache != nullptr || views_.size() > 0) {
          std::printf("(provenance is not collected while the result "
                      "cache is on or views are defined; .cache off / "
                      ".view drop first)\n");
        }
      } else {
        std::printf("%s", r->c_str());
      }
      return;
    }
    if (StartsWith(line, ".rpq ")) {
      RunRpq(line.substr(5));
      return;
    }
    if (StartsWith(line, "query")) {
      if (!BlockComplete(line)) {
        pending_ = line;
        return;
      }
      RunQuery(line);
      return;
    }
    if (!line.empty() && line.back() == '.') {
      if (remote_ != nullptr) {
        auto r = remote_->Apply(WriteBatch().Facts(line));
        Report(r.status(), r.ok() ? r->facts : 0, "facts added (remote)");
        return;
      }
      // Ground facts commit through the server (atomic batch, new
      // epoch); the writing session fast-forwards in place.
      auto r = active().Apply(WriteBatch().Facts(line));
      Report(r.status(), r.ok() ? *r : 0, "facts added");
      if (r.ok()) RefreshViews();
      return;
    }
    std::printf("unrecognized input; try .help\n");
  }

  void RunQuery(const std::string& text) {
    if (pending_dotquery_) {
      pending_dotquery_ = false;
      DotQuery(text);
      return;
    }
    if (pending_explain_) {
      pending_explain_ = false;
      Explain(text);
      return;
    }
    if (!pending_view_name_.empty()) {
      std::string name = pending_view_name_;
      pending_view_name_.clear();
      DefineView(name, text);
      return;
    }
    if (remote_ != nullptr) {
      RemoteQuery(text, /*datalog=*/false);
      return;
    }
    last_store_ = eval::ProvenanceStore();
    gov::GovernorContext governor = MakeGovernor();
    QueryRequest req = QueryRequest::GraphLog(text);
    req.options = opts_;
    // Provenance forces a cache/view bypass, so .why is only collected
    // while the cache is off and no views are defined.
    if (opts_.cache.result_cache == nullptr && views_.size() == 0) {
      req.options.eval.provenance = &last_store_;
    }
    req.options.eval.governor = &governor;
    auto r = active().Run(req);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    last_program_ = r->stats.programs;
    last_trace_ = std::move(r->trace);
    if (!r->profile.empty()) last_profile_ = std::move(r->profile);
    if (r->truncated) {
      std::printf("truncated: %s\n", r->truncated_by.c_str());
    }
    if (r->cache_hit) std::printf("(result cache hit)\n");
    if (r->served_from_view) {
      std::printf("(served from materialized view)\n");
    }
    const gl::QueryStats& stats = r->stats;
    std::printf("%llu tuples derived (%llu graphs translated, %llu "
                "summarized)\n",
                static_cast<unsigned long long>(stats.datalog.tuples_derived),
                static_cast<unsigned long long>(stats.graphs_translated),
                static_cast<unsigned long long>(stats.graphs_summarized));
  }

  /// Runs one query on the remote session, carrying the shell's eval
  /// knobs (.threads, .columnar) and limits (.limit) over the wire.
  void RemoteQuery(const std::string& text, bool datalog) {
    net::WireQuery q;
    q.language = datalog ? 1 : 0;
    q.text = text;
    q.num_threads = opts_.eval.num_threads;
    q.columnar = opts_.eval.columnar;
    q.specialize_bound_closures = opts_.translation.specialize_bound_closures;
    q.budget = budget_;
    q.deadline_ms = deadline_ms_;
    auto r = remote_->Run(q);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      if (r.status().code() == StatusCode::kOverloaded &&
          remote_->last_retry_after_ms() != 0) {
        std::printf("(server advises retry after %u ms)\n",
                    remote_->last_retry_after_ms());
      }
      return;
    }
    if (r->truncated) std::printf("truncated: %s\n", r->truncated_by.c_str());
    if (r->cache_hit) std::printf("(result cache hit)\n");
    if (r->served_from_view) std::printf("(served from materialized view)\n");
    std::printf("%llu tuples derived (%llu graphs translated, %llu "
                "summarized) [remote epoch %llu]\n",
                static_cast<unsigned long long>(r->tuples_derived),
                static_cast<unsigned long long>(r->graphs_translated),
                static_cast<unsigned long long>(r->graphs_summarized),
                static_cast<unsigned long long>(r->epoch));
  }

  void HandleServe(const std::string& arg) {
    if (arg.empty() || arg == "status") {
      if (net_server_ == nullptr) {
        std::printf("not serving; .serve PORT\n");
        return;
      }
      std::printf("serving on 127.0.0.1:%u — %zu connections, %llu shed\n",
                  net_server_->port(), net_server_->active_connections(),
                  static_cast<unsigned long long>(net_server_->rejected()));
      return;
    }
    if (arg == "stop") {
      if (net_server_ == nullptr) {
        std::printf("not serving\n");
        return;
      }
      net_server_->Stop();
      net_server_.reset();
      std::printf("stopped serving\n");
      return;
    }
    uint64_t port = 0;
    if (!ParseU64(arg, &port) || port > 65535) {
      std::printf("usage: .serve [PORT | status | stop]\n");
      return;
    }
    if (net_server_ != nullptr) {
      std::printf("already serving on port %u; .serve stop first\n",
                  net_server_->port());
      return;
    }
    net::NetServerOptions nopts;
    nopts.port = static_cast<uint16_t>(port);
    nopts.metrics = &metrics_;
    nopts.faults = &faults_;
    auto started = net::NetServer::Start(server_.get(), nopts);
    if (!started.ok()) {
      std::printf("error: %s\n", started.status().ToString().c_str());
      return;
    }
    net_server_ = std::move(*started);
    std::printf("serving on 127.0.0.1:%u (.connect %s:%u from another "
                "shell)\n",
                net_server_->port(), "127.0.0.1", net_server_->port());
  }

  void HandleConnect(const std::string& arg) {
    const size_t colon = arg.rfind(':');
    uint64_t port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !ParseU64(arg.substr(colon + 1), &port) || port == 0 ||
        port > 65535) {
      std::printf("usage: .connect HOST:PORT\n");
      return;
    }
    if (remote_ != nullptr) {
      std::printf("already connected to %s; .disconnect first\n",
                  remote_addr_.c_str());
      return;
    }
    const std::string host = arg.substr(0, colon);
    auto client = net::Client::Connect(host, static_cast<uint16_t>(port));
    if (!client.ok()) {
      std::printf("error: %s\n", client.status().ToString().c_str());
      return;
    }
    auto session = (*client)->OpenSession();
    if (!session.ok()) {
      std::printf("error: %s\n", session.status().ToString().c_str());
      return;
    }
    remote_ = std::move(*client);
    remote_addr_ = arg;
    std::printf("connected to %s — session %s at epoch %llu; facts, "
                "queries, .datalog, .load, .show, .relations now run "
                "remotely (.disconnect to detach)\n",
                arg.c_str(), session->name.c_str(),
                static_cast<unsigned long long>(session->epoch));
  }

  void Explain(const std::string& text) {
    QueryRequest req = QueryRequest::GraphLog(text);
    req.options = opts_;
    req.options.observability.explain = true;
    req.options.observability.explain_only = true;
    auto r = active().Run(req);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("%s", r->explain.c_str());
  }

  void HandleTrace(const std::string& arg) {
    if (arg == "on") {
      opts_.observability.tracing = true;
      std::printf("tracing on\n");
      return;
    }
    if (arg == "off") {
      opts_.observability.tracing = false;
      std::printf("tracing off\n");
      return;
    }
    if (!arg.empty() && arg != "json") {
      std::printf("usage: .trace [on|off|json]\n");
      return;
    }
    if (last_trace_.spans.empty() && last_trace_.metrics.empty()) {
      std::printf("no trace recorded; .trace on, then run a query\n");
      return;
    }
    if (arg == "json") {
      std::printf("%s\n", last_trace_.ToJson().c_str());
    } else {
      std::printf("%s", last_trace_.ToText().c_str());
    }
  }

  void HandleProfile(const std::string& arg) {
    if (arg == "on") {
      opts_.observability.profile = true;
      std::printf("profiling on\n");
      return;
    }
    if (arg == "off") {
      opts_.observability.profile = false;
      std::printf("profiling off\n");
      return;
    }
    std::string mode = arg;
    if (mode == "show") mode = "";
    if (StartsWith(mode, "show ")) mode = std::string(Trim(mode.substr(5)));
    if (!mode.empty() && mode != "json") {
      std::printf("usage: .profile [on|off|show [json]]\n");
      return;
    }
    if (last_profile_.empty()) {
      std::printf("no profile recorded; .profile on, then run a query\n");
      return;
    }
    if (mode == "json") {
      // Logical profile only: deterministic across thread counts.
      std::printf("%s\n", last_profile_.ToJson(false).c_str());
    } else {
      std::printf("%s", last_profile_.ToText().c_str());
    }
  }

  void HandleMetrics(const std::string& arg) {
    obs::MetricsSnapshot snap = metrics_.Snapshot();
    if (arg == "json") {
      std::printf("%s\n", snap.ToJson().c_str());
    } else if (arg == "prom") {
      std::printf("%s", snap.ToPrometheus().c_str());
    } else if (arg.empty()) {
      if (snap.empty()) {
        std::printf("no metrics recorded yet; run a query first\n");
      } else {
        std::printf("%s", snap.ToText().c_str());
      }
    } else {
      std::printf("usage: .metrics [json|prom]\n");
    }
  }

  void HandleSlowlog(const std::string& arg) {
    if (arg == "json") {
      std::printf("%s\n", slowlog_.ToJson().c_str());
      return;
    }
    if (arg == "clear") {
      slowlog_.Clear();
      std::printf("slow-query log cleared\n");
      return;
    }
    if (arg == "threshold" || StartsWith(arg, "threshold ")) {
      std::string ms(arg == "threshold" ? "" : Trim(arg.substr(10)));
      if (!ms.empty()) {
        bool numeric = ms.size() <= 9;
        for (char c : ms) numeric = numeric && c >= '0' && c <= '9';
        if (!numeric) {
          std::printf("usage: .slowlog threshold [MS]\n");
          return;
        }
        opts_.observability.slow_query_threshold_ns =
            std::strtoull(ms.c_str(), nullptr, 10) * 1000000ull;
      }
      std::printf("slow-query threshold = %llu ms\n",
                  static_cast<unsigned long long>(
                      opts_.observability.slow_query_threshold_ns / 1000000));
      return;
    }
    size_t limit = slowlog_.capacity();
    if (!arg.empty()) {
      bool numeric = arg.size() <= 4;
      for (char c : arg) numeric = numeric && c >= '0' && c <= '9';
      if (!numeric) {
        std::printf(
            "usage: .slowlog [N | json | clear | threshold [MS]]\n");
        return;
      }
      limit = std::strtoul(arg.c_str(), nullptr, 10);
    }
    std::vector<obs::SlowQueryRecord> entries = slowlog_.Entries();
    if (entries.empty()) {
      std::printf("slow-query log empty (threshold %llu ms, %llu total "
                  "recorded)\n",
                  static_cast<unsigned long long>(
                      opts_.observability.slow_query_threshold_ns / 1000000),
                  static_cast<unsigned long long>(slowlog_.total_recorded()));
      return;
    }
    size_t start = entries.size() > limit ? entries.size() - limit : 0;
    for (size_t i = start; i < entries.size(); ++i) {
      const obs::SlowQueryRecord& r = entries[i];
      std::string text = r.text;
      std::replace(text.begin(), text.end(), '\n', ' ');
      if (text.size() > 60) text = text.substr(0, 57) + "...";
      std::printf("  #%llu [%s] %.3f ms%s: %s\n",
                  static_cast<unsigned long long>(r.sequence),
                  r.language.c_str(),
                  static_cast<double>(r.duration_ns) / 1e6,
                  r.error.empty() ? "" : " (failed)", text.c_str());
    }
    std::printf("%zu of %llu recorded shown; .slowlog json for detail\n",
                entries.size() - start,
                static_cast<unsigned long long>(slowlog_.total_recorded()));
  }

  /// Materializes the session limits into a per-query governor. The
  /// deadline countdown starts now (query start), the Ctrl-C token and
  /// count are re-armed, and the session fault injector rides along.
  gov::GovernorContext MakeGovernor() {
    g_sigint_count.store(0, std::memory_order_relaxed);
    cancel_.Reset();
    gov::GovernorContext g;
    g.token = cancel_;
    if (deadline_ms_ != 0) g.deadline = gov::Deadline::AfterMillis(deadline_ms_);
    g.budget = budget_;
    g.faults = &faults_;
    return g;
  }

  void HandleLimit(const std::string& arg) {
    if (arg.empty()) {
      std::printf(
          "  rows     = %llu\n  delta    = %llu\n  rounds   = %llu\n"
          "  bytes    = %llu\n  deadline = %llu ms\n  partial  = %s\n"
          "(0 = unlimited)\n",
          static_cast<unsigned long long>(budget_.max_result_rows),
          static_cast<unsigned long long>(budget_.max_delta_rows),
          static_cast<unsigned long long>(budget_.max_rounds),
          static_cast<unsigned long long>(budget_.max_bytes),
          static_cast<unsigned long long>(deadline_ms_),
          budget_.return_partial ? "on" : "off");
      return;
    }
    if (arg == "clear") {
      budget_ = gov::ResourceBudget();
      deadline_ms_ = 0;
      std::printf("limits cleared\n");
      return;
    }
    std::istringstream in(arg);
    std::string what, value;
    in >> what >> value;
    if (what == "partial") {
      if (value == "on" || value == "off") {
        budget_.return_partial = value == "on";
        std::printf("partial = %s\n", value.c_str());
        return;
      }
    } else {
      uint64_t n = 0;
      if (ParseU64(value, &n)) {
        if (what == "rows") {
          budget_.max_result_rows = n;
        } else if (what == "delta") {
          budget_.max_delta_rows = n;
        } else if (what == "rounds") {
          budget_.max_rounds = n;
        } else if (what == "bytes") {
          budget_.max_bytes = n;
        } else if (what == "deadline") {
          deadline_ms_ = n;
        } else {
          what.clear();
        }
        if (!what.empty()) {
          std::printf("%s = %llu\n", what.c_str(),
                      static_cast<unsigned long long>(n));
          return;
        }
      }
    }
    std::printf(
        "usage: .limit [rows|delta|rounds|bytes N | deadline MS |"
        " partial on|off | clear]\n");
  }

  void HandleFault(const std::string& arg) {
    if (arg.empty() || arg == "list") {
      auto armed = faults_.Armed();
      if (armed.empty()) {
        std::printf("no faults armed\n");
        return;
      }
      for (const auto& [site, spec] : armed) {
        if (spec.action == gov::FaultAction::kFail) {
          std::printf("  %s: fail at hit %llu%s (%llu hits so far)\n",
                      site.c_str(),
                      static_cast<unsigned long long>(spec.trigger_hit),
                      spec.repeat ? "+" : "",
                      static_cast<unsigned long long>(faults_.hits(site)));
        } else {
          std::printf("  %s: stall %llu ms at hit %llu%s (%llu hits so "
                      "far)\n",
                      site.c_str(),
                      static_cast<unsigned long long>(spec.stall_ms),
                      static_cast<unsigned long long>(spec.trigger_hit),
                      spec.repeat ? "+" : "",
                      static_cast<unsigned long long>(faults_.hits(site)));
        }
      }
      return;
    }
    if (arg == "clear") {
      faults_.Reset();
      std::printf("faults cleared\n");
      return;
    }
    std::istringstream in(arg);
    std::string site, action, extra1, extra2;
    in >> site >> action >> extra1 >> extra2;
    gov::FaultSpec spec;
    bool ok = false;
    if (action == "fail") {
      spec.action = gov::FaultAction::kFail;
      ok = extra1.empty() || ParseU64(extra1, &spec.trigger_hit);
      ok = ok && extra2.empty();
    } else if (action == "stall") {
      spec.action = gov::FaultAction::kStall;
      ok = ParseU64(extra1, &spec.stall_ms);
      ok = ok && (extra2.empty() || ParseU64(extra2, &spec.trigger_hit));
    }
    if (!ok || spec.trigger_hit == 0) {
      std::printf("usage: .fault [list | clear | SITE fail [N] |"
                  " SITE stall MS [N]]\n");
      return;
    }
    faults_.Arm(site, spec);
    std::printf("armed %s\n", site.c_str());
  }

  void HandleCache(const std::string& arg) {
    if (arg == "on") {
      opts_.cache.result_cache = &cache_;
      std::printf("result cache on (%zu MiB budget)\n",
                  cache_.max_bytes() >> 20);
      return;
    }
    if (arg == "off") {
      opts_.cache.result_cache = nullptr;
      std::printf("result cache off\n");
      return;
    }
    if (arg == "clear") {
      cache_.Clear();
      std::printf("result cache cleared\n");
      return;
    }
    if (arg.empty() || arg == "stats") {
      cache::ResultCacheStats s = cache_.Stats();
      std::printf(
          "result cache %s: %llu hits (%llu replayed), %llu misses, "
          "%llu inserts, %llu evictions\n"
          "  %llu entries, %llu bytes resident (budget %zu)\n",
          opts_.cache.result_cache != nullptr ? "on" : "off",
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.replays),
          static_cast<unsigned long long>(s.misses),
          static_cast<unsigned long long>(s.inserts),
          static_cast<unsigned long long>(s.evictions),
          static_cast<unsigned long long>(s.entries),
          static_cast<unsigned long long>(s.bytes), cache_.max_bytes());
      return;
    }
    std::printf("usage: .cache [on|off|stats|clear]\n");
  }

  void HandleColumnar(const std::string& arg) {
    if (arg == "on") {
      // CSR snapshots land in the active session's private cache
      // (Session::Run defaults columnar runs onto it), so sessions never
      // share column-store state.
      opts_.eval.columnar = true;
      std::printf("columnar path on\n");
      return;
    }
    if (arg == "off") {
      opts_.eval.columnar = false;
      std::printf("columnar path off\n");
      return;
    }
    if (arg.empty() || arg == "stats") {
      columnar::CsrCache& cc = active().csr_cache();
      columnar::CsrCache::Stats s = cc.stats();
      std::printf(
          "columnar path %s: %llu CSR builds, %llu reuses, "
          "%llu invalidations, %zu snapshots resident (session %s)\n",
          opts_.eval.columnar ? "on" : "off",
          static_cast<unsigned long long>(s.builds),
          static_cast<unsigned long long>(s.reuses),
          static_cast<unsigned long long>(s.invalidations), cc.size(),
          active_.c_str());
      return;
    }
    std::printf("usage: .columnar [on|off|stats]\n");
  }

  void HandleSession(const std::string& arg) {
    if (arg.empty() || arg == "list") {
      std::printf("server epoch %llu, %zu open sessions\n",
                  static_cast<unsigned long long>(server_->epoch()),
                  sessions_.size());
      for (const auto& [name, s] : sessions_) {
        const Session::Stats& st = s->stats();
        std::printf("  %c %s: epoch %llu, %llu queries, %llu writes, "
                    "%llu refreshes\n",
                    name == active_ ? '*' : ' ', name.c_str(),
                    static_cast<unsigned long long>(s->epoch()),
                    static_cast<unsigned long long>(st.queries),
                    static_cast<unsigned long long>(st.writes),
                    static_cast<unsigned long long>(st.refreshes));
      }
      return;
    }
    if (arg == "open" || StartsWith(arg, "open ")) {
      std::string name(arg == "open" ? "" : Trim(arg.substr(5)));
      if (!name.empty() && sessions_.count(name) != 0) {
        std::printf("session '%s' already open; .session switch %s\n",
                    name.c_str(), name.c_str());
        return;
      }
      auto s = server_->OpenSession({.name = name});
      if (!s.ok()) {
        std::printf("error: %s\n", s.status().ToString().c_str());
        return;
      }
      name = (*s)->name();
      sessions_[name] = std::move(*s);
      active_ = name;
      std::printf("session %s open at epoch %llu (now active)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(active().epoch()));
      return;
    }
    if (StartsWith(arg, "switch ")) {
      std::string name(Trim(arg.substr(7)));
      if (sessions_.count(name) == 0) {
        std::printf("no session '%s'; .session list\n", name.c_str());
        return;
      }
      active_ = name;
      std::printf("session %s active (epoch %llu, server at %llu)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(active().epoch()),
                  static_cast<unsigned long long>(server_->epoch()));
      return;
    }
    if (arg == "refresh") {
      Status st = active().Refresh();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return;
      }
      std::printf("session %s at epoch %llu\n", active_.c_str(),
                  static_cast<unsigned long long>(active().epoch()));
      return;
    }
    std::printf("usage: .session [list | open [NAME] | switch NAME |"
                " refresh]\n");
  }

  ServerOptions MakeServerOptions() {
    return ServerOptions{.metrics = &metrics_, .faults = &faults_};
  }

  /// Replaces the server and re-homes the shell onto a fresh "main"
  /// session. Sessions pin snapshots owned by the old server, so every
  /// open session must be dropped before the old server is.
  bool SwapServer(std::unique_ptr<Server> next) {
    // Remote connections hold sessions pinned to the old server; the
    // listener must drain before the server it fronts is replaced.
    if (net_server_ != nullptr) {
      net_server_->Stop();
      net_server_.reset();
      std::printf("(stopped serving: the served server was replaced)\n");
    }
    auto main_session = next->OpenSession({.name = "main"});
    if (!main_session.ok()) {
      std::printf("error: %s\n", main_session.status().ToString().c_str());
      return false;
    }
    sessions_.clear();
    server_ = std::move(next);
    sessions_["main"] = std::move(*main_session);
    active_ = "main";
    return true;
  }

  void HandleWal(const std::string& arg) {
    if (arg.empty() || arg == "status") {
      if (!server_->durable()) {
        std::printf("wal off (in-memory server); .wal on DIR\n");
        return;
      }
      std::printf("wal on: %s/wal.log, %llu bytes, fsync %s, epoch %llu\n",
                  server_->dir().c_str(),
                  static_cast<unsigned long long>(
                      server_->wal()->tail_offset()),
                  std::string(durability::FsyncPolicyName(
                                  server_->wal()->fsync_policy()))
                      .c_str(),
                  static_cast<unsigned long long>(server_->epoch()));
      return;
    }
    if (arg == "on" || StartsWith(arg, "on ")) {
      if (server_->durable()) {
        std::printf("wal already on: %s\n", server_->dir().c_str());
        return;
      }
      std::string dir(arg == "on" ? "" : Trim(arg.substr(3)));
      if (dir.empty()) {
        std::printf("usage: .wal on DIR\n");
        return;
      }
      // Whatever the in-memory server holds migrates as one committed
      // batch, so the durable server starts from the shell's state
      // (merged with anything DIR already recovered).
      std::string dump = storage::DumpFacts(server_->database());
      auto durable = Server::Open(dir, MakeServerOptions());
      if (!durable.ok()) {
        std::printf("error: %s\n", durable.status().ToString().c_str());
        return;
      }
      if (!dump.empty()) {
        auto migrated = (*durable)->Apply(WriteBatch().Facts(dump));
        if (!migrated.ok()) {
          std::printf("error migrating facts: %s\n",
                      migrated.status().ToString().c_str());
          return;
        }
      }
      if (!SwapServer(std::move(*durable))) return;
      std::printf("wal on: %s at epoch %llu (sessions reset to 'main')\n",
                  server_->dir().c_str(),
                  static_cast<unsigned long long>(server_->epoch()));
      return;
    }
    if (arg == "off") {
      if (!server_->durable()) {
        std::printf("wal already off\n");
        return;
      }
      std::string dump = storage::DumpFacts(server_->database());
      auto mem = std::make_unique<Server>(MakeServerOptions());
      if (!dump.empty()) {
        auto migrated = mem->Apply(WriteBatch().Facts(dump));
        if (!migrated.ok()) {
          std::printf("error migrating facts: %s\n",
                      migrated.status().ToString().c_str());
          return;
        }
      }
      if (!SwapServer(std::move(mem))) return;
      std::printf(
          "wal off; state kept in memory only (sessions reset to 'main')\n");
      return;
    }
    std::printf("usage: .wal [on DIR | off | status]\n");
  }

  void HandleCheckpoint() {
    Status st = server_->Checkpoint();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("checkpoint written at epoch %llu; wal truncated to %llu "
                "bytes\n",
                static_cast<unsigned long long>(server_->epoch()),
                static_cast<unsigned long long>(
                    server_->wal()->tail_offset()));
  }

  /// Recovery drill: closes the durable server (its WAL flushes on the
  /// way down) and re-opens the same directory through the full
  /// checkpoint-load + WAL-replay path — exactly what a restart after a
  /// crash would do, observable live.
  void HandleRecover() {
    if (!server_->durable()) {
      std::printf("not a durable server; .wal on DIR first\n");
      return;
    }
    const std::string dir = server_->dir();
    if (net_server_ != nullptr) {
      net_server_->Stop();
      net_server_.reset();
      std::printf("(stopped serving: the served server was replaced)\n");
    }
    sessions_.clear();
    server_.reset();
    auto reopened = Server::Open(dir, MakeServerOptions());
    if (!reopened.ok()) {
      std::printf("error: %s\n", reopened.status().ToString().c_str());
      std::printf(
          "recovery failed; continuing on an empty in-memory server\n");
      reopened = std::make_unique<Server>(MakeServerOptions());
    }
    if (!SwapServer(std::move(*reopened))) std::exit(1);
    std::printf("recovered %s at epoch %llu (sessions reset to 'main')\n",
                dir.c_str(),
                static_cast<unsigned long long>(server_->epoch()));
  }

  void DefineView(const std::string& name, const std::string& text) {
    auto def = MakeViewDefinition(name, text, &db(), opts_);
    if (!def.ok()) {
      std::printf("error: %s\n", def.status().ToString().c_str());
      return;
    }
    Status st = views_.Define(std::move(*def), &db(), &metrics_);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    cache::ViewStats vs = views_.StatsOf(name, &db());
    std::printf("view %s materialized (%llu rows)\n", name.c_str(),
                static_cast<unsigned long long>(vs.result_rows));
  }

  void HandleView(const std::string& arg) {
    if (arg.empty() || arg == "list") {
      if (views_.size() == 0) {
        std::printf("no views defined; .view define NAME QUERY\n");
        return;
      }
      for (const std::string& name : views_.Names()) {
        cache::ViewStats vs = views_.StatsOf(name, &db());
        std::printf(
            "  %s: %llu rows (%s), %llu full + %llu incremental "
            "refreshes, served %llu\n",
            name.c_str(), static_cast<unsigned long long>(vs.result_rows),
            vs.fresh ? "fresh" : "stale",
            static_cast<unsigned long long>(vs.full_refreshes),
            static_cast<unsigned long long>(vs.incremental_refreshes),
            static_cast<unsigned long long>(vs.served));
      }
      return;
    }
    if (StartsWith(arg, "drop ")) {
      std::string name(Trim(arg.substr(5)));
      if (views_.Drop(name)) {
        std::printf("view %s dropped\n", name.c_str());
      } else {
        std::printf("no view '%s'\n", name.c_str());
      }
      return;
    }
    if (arg == "refresh" || StartsWith(arg, "refresh ")) {
      std::string name(arg == "refresh" ? "" : Trim(arg.substr(8)));
      Status st = name.empty() ? views_.RefreshAll(&db(), &metrics_)
                               : views_.Refresh(name, &db(), &metrics_);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("refreshed\n");
      }
      return;
    }
    std::printf(
        "usage: .view [list | define NAME QUERY | refresh [NAME] |"
        " drop NAME]\n");
  }

  /// Keeps every defined view fresh after base-fact changes; a refresh
  /// failure (e.g. a fact made a view's program unsafe) is reported but
  /// does not undo the insertion.
  void RefreshViews() {
    if (views_.size() == 0) return;
    Status st = views_.RefreshAll(&db(), &metrics_);
    if (!st.ok()) {
      std::printf("view refresh error: %s\n", st.ToString().c_str());
    }
  }

  void HandleResource() {
    db().ExportResourceMetrics(&metrics_);
    size_t total_rows = 0;
    for (const auto& [name, rel] : db().relations()) {
      std::printf("  %s/%zu: %zu rows, %zu bytes\n",
                  db().symbols().name(name).c_str(), rel.arity(), rel.size(),
                  rel.MemoryBytes());
      total_rows += rel.size();
    }
    std::printf("total: %zu relations, %zu rows, %zu bytes\n",
                db().relations().size(), total_rows, db().TotalBytes());
  }

  void DotQuery(const std::string& text) {
    auto q = gl::ParseGraphicalQuery(text, &db().symbols());
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    std::printf("%s", RenderGraphicalQuery(*q, db().symbols()).c_str());
  }

  void RunRpq(const std::string& args) {
    // .rpq [SRC [DST]] EXPR — heuristics: tokens before the expression
    // are endpoint names when the remaining text still parses.
    std::istringstream in(args);
    std::string first, second;
    in >> first;
    std::string rest;
    std::getline(in, rest);
    rpq::RpqOptions opts;
    std::string expr = args;
    // Try: SRC DST EXPR.
    {
      std::istringstream in2(rest);
      in2 >> second;
      std::string rest2;
      std::getline(in2, rest2);
      SymbolTable probe;
      if (!second.empty() &&
          gl::ParsePathExpr(rest2, &probe).ok() &&
          db().symbols().Lookup(first) != kNoSymbol &&
          db().symbols().Lookup(second) != kNoSymbol) {
        opts.source = Value::Sym(db().Intern(first));
        opts.target = Value::Sym(db().Intern(second));
        expr = rest2;
      }
    }
    if (!opts.source.has_value()) {
      SymbolTable probe;
      if (gl::ParsePathExpr(rest, &probe).ok() &&
          db().symbols().Lookup(first) != kNoSymbol) {
        opts.source = Value::Sym(db().Intern(first));
        expr = rest;
      }
    }
    graph::DataGraph g = graph::DataGraph::FromDatabase(db());
    obs::Tracer tracer;
    if (opts_.observability.tracing) opts.tracer = &tracer;
    opts.metrics = &metrics_;
    gov::GovernorContext governor = MakeGovernor();
    opts.governor = &governor;
    rpq::RpqStats rpq_stats;
    auto r = rpq::EvalRpqText(g, expr, &db().symbols(), opts, &rpq_stats);
    if (opts_.observability.tracing) last_trace_ = tracer.TakeReport();
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (rpq_stats.truncated) std::printf("truncated: resource budget\n");
    for (const auto& t : r->rows()) {
      std::printf("  (%s, %s)\n", t[0].ToString(db().symbols()).c_str(),
                  t[1].ToString(db().symbols()).c_str());
    }
    std::printf("%zu pairs\n", r->size());
  }

  void Report(const Status& s, size_t n, const char* what) {
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
    } else {
      std::printf("%zu %s\n", n, what);
    }
  }

  std::string pending_;
  bool pending_dotquery_ = false;
  bool pending_explain_ = false;
  // Non-empty while a multiline `.view define NAME` block accumulates.
  std::string pending_view_name_;
  bool done_ = false;
  // Session-wide options for query/.datalog evaluation: worker lanes
  // (.threads) and tracing (.trace on|off) both live here.
  QueryOptions opts_;
  // Trace of the most recent traced evaluation (.trace / .trace json).
  obs::TraceReport last_trace_;
  // Profile of the most recent profiled evaluation (.profile show).
  obs::QueryProfile last_profile_;
  // Session-wide metrics registry (.metrics) and slow-query ring
  // (.slowlog); opts_ points at both for every evaluation.
  obs::MetricsRegistry metrics_;
  obs::SlowQueryLog slowlog_;
  // Provenance of the most recent query/.datalog evaluation (.why).
  eval::ProvenanceStore last_store_;
  datalog::Program last_program_;
  // Governor state: the Ctrl-C cancellation token (shared with the
  // SIGINT handler), session-wide limits (.limit) applied to every
  // query via a fresh per-query GovernorContext, and the fault
  // injector (.fault).
  gov::CancellationToken cancel_;
  gov::ResourceBudget budget_;
  uint64_t deadline_ms_ = 0;
  gov::FaultInjector faults_;
  // Result cache (.cache on arms it into opts_) and materialized views
  // (.view; always consulted — serving is fingerprint-gated anyway).
  cache::ResultCache cache_;
  cache::ViewCatalog views_;
  // The in-process server: every shell "session" is a graphlog::Session
  // pinned to an epoch snapshot of the server's database. Writes (facts,
  // .load) commit through Session::Apply — atomic batches that publish a
  // new epoch and fast-forward the writing session — and `.session
  // open/list/switch` multiplexes independent snapshots. Held by pointer
  // so `.wal on|off` and `.recover` can swap the whole server (sessions
  // are re-homed by SwapServer). Declared after metrics_/faults_: the
  // ServerOptions initializer captures them.
  std::unique_ptr<Server> server_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::string active_;
  // Network front end: `.serve` exposes server_ over TCP (stopped before
  // any server swap — remote sessions pin its snapshots), and `.connect`
  // attaches the shell to a remote graphlogd, routing the data commands
  // through this client until `.disconnect`.
  std::unique_ptr<net::NetServer> net_server_;
  std::unique_ptr<net::Client> remote_;
  std::string remote_addr_;
};

}  // namespace

int main() {
  std::printf("GraphLog shell — .help for commands\n");
  Shell shell;
  return shell.Run();
}
