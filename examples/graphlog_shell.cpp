// graphlog_shell: an interactive GraphLog session.
//
// The textual stand-in for the Section 5 prototype: load a database, type
// graphical queries, inspect answers, and export DOT renderings of both
// the database graph and the query graphs themselves.
//
//   $ ./build/examples/graphlog_shell
//   graphlog> edge(a, b).
//   graphlog> edge(b, c).
//   graphlog> query t { edge X -> Y : edge+; distinguished X -> Y : t; }
//   3 tuples derived
//   graphlog> .show t
//   t(a, b). ...
//
// Commands:
//   <fact>.                    add a ground fact
//   query NAME { ... }         evaluate a graphical query (may span lines)
//   .datalog <rule>            evaluate one Datalog rule
//   .load FILE | .save FILE    fact-file I/O
//   .show REL | .relations     inspect state
//   .dot | .dotquery NAME{...} export DOT (database / query graph)
//   .rpq [SRC [DST]] EXPR      automaton-product RPQ over the data graph
//   .help | .quit
//
// Reads from stdin, so it is scriptable: `graphlog_shell < script.glog`.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "eval/provenance.h"
#include "graph/data_graph.h"
#include "graphlog/dot.h"
#include "graphlog/engine.h"
#include "graphlog/parser.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "storage/io.h"

using namespace graphlog;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  fact(args).              add a ground fact\n"
      "  query NAME { ... }       evaluate a graphical query\n"
      "  .datalog RULE            evaluate a single Datalog rule\n"
      "  .load FILE               load a fact file\n"
      "  .save FILE               save all relations as facts\n"
      "  .show RELATION           print a relation\n"
      "  .relations               list relations and sizes\n"
      "  .dot                     DOT of the database graph\n"
      "  .dotquery QUERY          DOT of a query graph (visual formalism)\n"
      "  .rpq [SRC [DST]] EXPR    run a regular path query\n"
      "  .why FACT                derivation tree of a fact from the most\n"
      "                           recent query/.datalog evaluation\n"
      "  .threads [N]             show or set evaluation worker lanes\n"
      "                           (1 = serial, 0 = hardware concurrency)\n"
      "  .help / .quit\n");
}

/// Balances braces to decide whether a query block is complete.
bool BlockComplete(const std::string& text) {
  int depth = 0;
  bool seen = false;
  for (char c : text) {
    if (c == '{') {
      ++depth;
      seen = true;
    }
    if (c == '}') --depth;
  }
  return seen && depth <= 0;
}

class Shell {
 public:
  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      Handle(line);
      if (done_) break;
      Prompt();
    }
    return 0;
  }

 private:
  void Prompt() {
    if (pending_.empty()) {
      std::printf("graphlog> ");
    } else {
      std::printf("      ... ");
    }
    std::fflush(stdout);
  }

  void Handle(const std::string& raw) {
    std::string line(Trim(raw));
    if (!pending_.empty()) {
      pending_ += "\n" + line;
      if (BlockComplete(pending_)) {
        RunQuery(pending_);
        pending_.clear();
      }
      return;
    }
    if (line.empty() || line[0] == '#') return;
    if (line == ".quit" || line == ".exit") {
      done_ = true;
      return;
    }
    if (line == ".help") {
      PrintHelp();
      return;
    }
    if (line == ".relations") {
      for (const auto& [name, rel] : db_.relations()) {
        std::printf("  %s/%zu: %zu tuples\n",
                    db_.symbols().name(name).c_str(), rel.arity(),
                    rel.size());
      }
      return;
    }
    if (StartsWith(line, ".show ")) {
      std::string name(Trim(line.substr(6)));
      Symbol s = db_.symbols().Lookup(name);
      if (s == kNoSymbol || db_.Find(s) == nullptr) {
        std::printf("no relation '%s'\n", name.c_str());
      } else {
        std::printf("%s", db_.RelationToString(s).c_str());
      }
      return;
    }
    if (StartsWith(line, ".load ")) {
      auto r = storage::LoadFactsFile(std::string(Trim(line.substr(6))),
                                      &db_);
      Report(r.status(), r.ok() ? *r : 0, "facts loaded");
      return;
    }
    if (StartsWith(line, ".save ")) {
      Status s =
          storage::SaveFactsFile(std::string(Trim(line.substr(6))), db_);
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      return;
    }
    if (line == ".dot") {
      graph::DataGraph g = graph::DataGraph::FromDatabase(db_);
      std::printf("%s", ToDot(g, db_.symbols()).c_str());
      return;
    }
    if (StartsWith(line, ".dotquery ")) {
      std::string text = line.substr(10);
      if (!BlockComplete(text)) {
        pending_dotquery_ = true;
        pending_ = text;
        return;
      }
      DotQuery(text);
      return;
    }
    if (line == ".threads" || StartsWith(line, ".threads ")) {
      if (line == ".threads") {
        std::printf("num_threads = %u\n", num_threads_);
        return;
      }
      std::string arg(Trim(line.substr(9)));
      // Digits only: strtoul would silently wrap a negative sign around.
      bool numeric = !arg.empty() && arg.size() <= 4;
      for (char c : arg) numeric = numeric && c >= '0' && c <= '9';
      if (!numeric) {
        std::printf(
            "usage: .threads [N]   (1 = serial, 0 = hardware, max 9999)\n");
        return;
      }
      num_threads_ = static_cast<unsigned>(std::strtoul(arg.c_str(),
                                                        nullptr, 10));
      std::printf("num_threads = %u\n", num_threads_);
      return;
    }
    if (StartsWith(line, ".datalog ")) {
      auto prog = datalog::ParseProgram(line.substr(9), &db_.symbols());
      if (!prog.ok()) {
        std::printf("error: %s\n", prog.status().ToString().c_str());
        return;
      }
      last_store_ = eval::ProvenanceStore();
      last_program_ = *prog;
      eval::EvalOptions opts;
      opts.provenance = &last_store_;
      opts.num_threads = num_threads_;
      auto r = eval::Evaluate(*prog, &db_, opts);
      Report(r.status(), r.ok() ? r->tuples_derived : 0, "tuples derived");
      return;
    }
    if (StartsWith(line, ".why ")) {
      auto r = eval::ExplainFact(last_store_, last_program_, db_.symbols(),
                                 line.substr(5));
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
      } else {
        std::printf("%s", r->c_str());
      }
      return;
    }
    if (StartsWith(line, ".rpq ")) {
      RunRpq(line.substr(5));
      return;
    }
    if (StartsWith(line, "query")) {
      if (!BlockComplete(line)) {
        pending_ = line;
        return;
      }
      RunQuery(line);
      return;
    }
    if (!line.empty() && line.back() == '.') {
      auto r = storage::LoadFacts(line, &db_);
      Report(r.status(), r.ok() ? *r : 0, "facts added");
      return;
    }
    std::printf("unrecognized input; try .help\n");
  }

  void RunQuery(const std::string& text) {
    if (pending_dotquery_) {
      pending_dotquery_ = false;
      DotQuery(text);
      return;
    }
    auto q = gl::ParseGraphicalQuery(text, &db_.symbols());
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    last_store_ = eval::ProvenanceStore();
    gl::GraphLogOptions opts;
    opts.eval.provenance = &last_store_;
    opts.eval.num_threads = num_threads_;
    auto r = gl::EvaluateGraphicalQuery(*q, &db_, opts);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    last_program_ = r->programs;
    std::printf("%llu tuples derived (%llu graphs translated, %llu "
                "summarized)\n",
                static_cast<unsigned long long>(r->datalog.tuples_derived),
                static_cast<unsigned long long>(r->graphs_translated),
                static_cast<unsigned long long>(r->graphs_summarized));
  }

  void DotQuery(const std::string& text) {
    auto q = gl::ParseGraphicalQuery(text, &db_.symbols());
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    std::printf("%s", RenderGraphicalQuery(*q, db_.symbols()).c_str());
  }

  void RunRpq(const std::string& args) {
    // .rpq [SRC [DST]] EXPR — heuristics: tokens before the expression
    // are endpoint names when the remaining text still parses.
    std::istringstream in(args);
    std::string first, second;
    in >> first;
    std::string rest;
    std::getline(in, rest);
    rpq::RpqOptions opts;
    std::string expr = args;
    // Try: SRC DST EXPR.
    {
      std::istringstream in2(rest);
      in2 >> second;
      std::string rest2;
      std::getline(in2, rest2);
      SymbolTable probe;
      if (!second.empty() &&
          gl::ParsePathExpr(rest2, &probe).ok() &&
          db_.symbols().Lookup(first) != kNoSymbol &&
          db_.symbols().Lookup(second) != kNoSymbol) {
        opts.source = Value::Sym(db_.Intern(first));
        opts.target = Value::Sym(db_.Intern(second));
        expr = rest2;
      }
    }
    if (!opts.source.has_value()) {
      SymbolTable probe;
      if (gl::ParsePathExpr(rest, &probe).ok() &&
          db_.symbols().Lookup(first) != kNoSymbol) {
        opts.source = Value::Sym(db_.Intern(first));
        expr = rest;
      }
    }
    graph::DataGraph g = graph::DataGraph::FromDatabase(db_);
    auto r = rpq::EvalRpqText(g, expr, &db_.symbols(), opts);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    for (const auto& t : r->rows()) {
      std::printf("  (%s, %s)\n", t[0].ToString(db_.symbols()).c_str(),
                  t[1].ToString(db_.symbols()).c_str());
    }
    std::printf("%zu pairs\n", r->size());
  }

  void Report(const Status& s, size_t n, const char* what) {
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
    } else {
      std::printf("%zu %s\n", n, what);
    }
  }

  storage::Database db_;
  std::string pending_;
  bool pending_dotquery_ = false;
  bool done_ = false;
  // Worker lanes for .datalog and query evaluation (eval::EvalOptions).
  unsigned num_threads_ = 1;
  // Provenance of the most recent query/.datalog evaluation (.why).
  eval::ProvenanceStore last_store_;
  datalog::Program last_program_;
};

}  // namespace

int main() {
  std::printf("GraphLog shell — .help for commands\n");
  Shell shell;
  return shell.Run();
}
