// Scheduling: the full Figure 11 pipeline.
//
// Three query graphs over a task database (affects / duration /
// scheduled-start / delay):
//   1. affects-d  — "move" each task's duration onto the affects edges,
//   2. earlier-start — path summarization: E is the LONGEST sum of
//      durations over all affects-paths (critical path, Section 4),
//   3. delayed-start — arithmetic: the new start of each downstream task
//      when a delayed task slips by DS days.
//
// Build & run:  ./build/examples/scheduling [num_tasks]

#include <cstdio>
#include <cstdlib>

#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;

int main(int argc, char** argv) {
  workload::TasksOptions opts;
  if (argc > 1) opts.num_tasks = std::atoi(argv[1]);
  storage::Database db;
  if (auto s = workload::Tasks(opts, &db); !s.ok()) {
    std::fprintf(stderr, "generator failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("task DAG: %d tasks, %zu affects edges\n", opts.num_tasks,
              db.Find("affects") ? db.Find("affects")->size() : 0);
  std::printf("delayed task(s):\n%s\n",
              db.RelationToString(db.Intern("delay")).c_str());

  const char* query =
      // Graph 1 (Figure 11, top): duration of T2 moved onto the edge.
      "query affects-d {\n"
      "  edge T1 -> T2 : affects;\n"
      "  edge T2 -> D : duration;\n"
      "  distinguished T1 -> T2 : affects-d(D);\n"
      "}\n"
      // Graph 2 (Figure 11, middle): longest sum of durations over all
      // paths — path summarization.
      "query earlier-start {\n"
      "  summarize E = max<sum<D>> over affects-d(D);\n"
      "  distinguished T1 -> T2 : earlier-start(E);\n"
      "}\n"
      // Graph 3 (Figure 11, bottom): the new start time of T1 when task T
      // slips by DS days.
      "query delayed-start {\n"
      "  edge T -> T1 : earlier-start(E);\n"
      "  edge T -> DS : delay;\n"
      "  edge T -> S : scheduled-start;\n"
      "  where NS := S + DS + E;\n"
      "  distinguished T1 -> NS : delayed-start(T);\n"
      "}\n";
  std::printf("=== Figure 11 graphical query ===\n%s\n", query);

  auto resp = graphlog::Run(QueryRequest::GraphLog(query), &db);
  if (!resp.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  const gl::QueryStats& stats = resp->stats;

  std::printf("earlier-start (critical-path distances), sample:\n");
  int shown = 0;
  for (const auto& t : db.Find("earlier-start")->rows()) {
    if (++shown > 8) break;
    std::printf("  earlier-start(%s, %s, %s)\n",
                t[0].ToString(db.symbols()).c_str(),
                t[1].ToString(db.symbols()).c_str(),
                t[2].ToString(db.symbols()).c_str());
  }
  std::printf("\ndelayed-start (task, new start, delayed task):\n%s",
              db.RelationToString(db.Intern("delayed-start")).c_str());
  std::printf("\n(%llu graphs translated, %llu summarized)\n",
              static_cast<unsigned long long>(stats.graphs_translated),
              static_cast<unsigned long long>(stats.graphs_summarized));
  return 0;
}
