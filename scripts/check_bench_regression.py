#!/usr/bin/env python3
"""Compare two benchmark runs and fail on regressions.

Both inputs are BENCH_*.json files produced by bench/run_benches.sh
(schema_version 1: a header wrapping the raw google-benchmark report), or
directories of them — directory mode pairs files by name and compares
every bench present in both.

A benchmark regresses when its real_time grows by more than --tolerance
(relative, default 10%) over the baseline. Aggregate rows are preferred
when present (the suite runs with repetitions + aggregates): the "median"
aggregate is used, falling back to "mean", falling back to the raw row.

In directory mode, a current report with no baseline counterpart is a
MISSING BASELINE: a bench binary was added (or a baseline was never
checked in) and its numbers are not being compared at all. That is its
own failure class — distinct from a regression — so CI flags the gap
instead of silently passing; --allow-missing downgrades it to a note.

Exit status: 0 = no regression, 1 = at least one regression, 2 = usage or
schema error, 3 = missing baseline (only when no regression also fired;
regressions take precedence).

Usage:
  scripts/check_bench_regression.py BASELINE CURRENT [--tolerance 0.10]
                                    [--allow-missing]
"""

import argparse
import json
import os
import sys


def fail(msg: str) -> "NoReturn":  # noqa: F821 (py3.11 typing unused)
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_report(path):
    """Returns (header, benchmark_rows) for one BENCH_*.json file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if doc.get("schema_version") != 1 or "benchmark" not in doc:
        fail(f"{path}: not a schema_version-1 bench report "
             "(run bench/run_benches.sh)")
    rows = doc["benchmark"].get("benchmarks", [])
    return doc, rows


def representative_times(rows):
    """Maps base benchmark name -> (real_time, time_unit).

    Prefers the median aggregate, then mean, then the raw (non-aggregate)
    row — reports generated with --benchmark_report_aggregates_only only
    contain aggregates; plain runs only contain raw rows.
    """
    PREFERENCE = {"median": 0, "mean": 1, None: 2}
    best = {}  # name -> (preference, real_time, unit)
    for row in rows:
        if row.get("run_type") == "aggregate":
            aggregate = row.get("aggregate_name")
            if aggregate not in ("median", "mean"):
                continue  # stddev/cv and friends are not comparable times
            name = row.get("run_name", row["name"])
            pref = PREFERENCE[aggregate]
        else:
            name = row["name"]
            pref = PREFERENCE[None]
        seen = best.get(name)
        if seen is None or pref < seen[0]:
            best[name] = (pref, row["real_time"], row.get("time_unit", "ns"))
    return {n: (t, u) for n, (_, t, u) in best.items()}


UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def compare_reports(base_path, cur_path, tolerance):
    """Prints a comparison table; returns the list of regressed names."""
    base_doc, base_rows = load_report(base_path)
    cur_doc, cur_rows = load_report(cur_path)
    base = representative_times(base_rows)
    cur = representative_times(cur_rows)

    print(f"== {base_doc.get('bench', '?')}: "
          f"{base_doc.get('git_rev', '?')} -> {cur_doc.get('git_rev', '?')}")
    regressed = []
    for name in sorted(base):
        if name not in cur:
            print(f"  {name}: missing from current run")
            continue
        bt, bu = base[name]
        ct, cu = cur[name]
        base_ns = bt * UNIT_NS.get(bu, 1)
        cur_ns = ct * UNIT_NS.get(cu, 1)
        if base_ns <= 0:
            continue
        delta = (cur_ns - base_ns) / base_ns
        mark = ""
        if delta > tolerance:
            mark = "  REGRESSION"
            regressed.append(name)
        elif delta < -tolerance:
            mark = "  improved"
        print(f"  {name}: {base_ns:.0f}ns -> {cur_ns:.0f}ns "
              f"({delta:+.1%}){mark}")
    for name in sorted(set(cur) - set(base)):
        print(f"  {name}: new (no baseline)")
    return regressed


def bench_files(directory):
    return {
        f: os.path.join(directory, f)
        for f in os.listdir(directory)
        if f.startswith("BENCH_") and f.endswith(".json")
    }


def main():
    parser = argparse.ArgumentParser(
        description="compare two bench runs; exit 1 on regression")
    parser.add_argument("baseline", help="BENCH_*.json file or directory")
    parser.add_argument("current", help="BENCH_*.json file or directory")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative slowdown allowed (default 0.10)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a current report has no "
                             "baseline counterpart")
    args = parser.parse_args()

    pairs = []
    missing_baseline = []
    if os.path.isdir(args.baseline) and os.path.isdir(args.current):
        base_files = bench_files(args.baseline)
        cur_files = bench_files(args.current)
        for name in sorted(base_files.keys() & cur_files.keys()):
            pairs.append((base_files[name], cur_files[name]))
        if not pairs:
            fail("no BENCH_*.json files common to both directories")
        for name in sorted(base_files.keys() - cur_files.keys()):
            print(f"note: {name} only in baseline")
        for name in sorted(cur_files.keys() - base_files.keys()):
            if args.allow_missing:
                print(f"note: {name} only in current")
            else:
                print(f"MISSING BASELINE: {name} has current results but "
                      "no baseline to compare against")
                missing_baseline.append(name)
    elif os.path.isfile(args.baseline) and os.path.isfile(args.current):
        pairs.append((args.baseline, args.current))
    else:
        fail("baseline and current must both be files or both directories")

    regressed = []
    for base_path, cur_path in pairs:
        regressed += compare_reports(base_path, cur_path, args.tolerance)

    if regressed:
        print(f"\n{len(regressed)} regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(regressed)}")
        return 1
    if missing_baseline:
        print(f"\n{len(missing_baseline)} bench report(s) without a "
              f"baseline: {', '.join(missing_baseline)} "
              "(check one in, or pass --allow-missing)")
        return 3
    print(f"\nno regressions beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
