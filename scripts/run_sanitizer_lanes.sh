#!/usr/bin/env bash
# Builds the suite under ThreadSanitizer and AddressSanitizer (separate
# build trees — the two instrumentations cannot share one) and runs the
# robustness test label in each. The governor's error paths are exactly
# the ones data races and use-after-free hide in: cross-thread
# cancellation, lane-error propagation out of the pool, rollback after a
# mid-round abort, stalled lanes woken by a cancel.
#
# The cache label rides along by default: the result cache's sharded LRU
# and the view catalog's refresh-on-serve are exactly the structures
# concurrent queries hammer.
#
# The robustness label also carries server_test — the Server/Session
# epoch-snapshot suite, including its 1-writer/4-reader concurrency
# tests. The TSan lane is the proof behind DESIGN §11's claim that
# sessions share no mutable state with the committing writer.
#
# The profile label (profile_test) rides along too: EXPLAIN ANALYZE
# counters are accumulated per (task, partition) across worker lanes and
# folded at merge time — the TSan lane checks that the instrumentation
# added no cross-lane writes.
#
# The durability label (durability_test) rounds out the set: WAL append,
# checkpoint write, and recovery shuffle raw bytes through hand-rolled
# codecs — exactly where ASan finds the off-by-ones, and the durable
# commit path interleaves with session reads under TSan.
#
# The net label (net_test) joins them: the TCP front end runs one
# handler thread per connection against the Server's writer mutex, and
# Stop() tears all of them down mid-request — connection threads vs the
# committing writer is precisely a TSan workload, and the frame codecs
# shuffling length-prefixed bytes are an ASan one.
#
# Usage: scripts/run_sanitizer_lanes.sh [LABEL] [BUILD_ROOT]
# Defaults: LABEL = 'robustness|cache|profile|durability|net' (a ctest -L
# regex), BUILD_ROOT = build-san (creates ${BUILD_ROOT}-thread and
# ${BUILD_ROOT}-address).

set -euo pipefail

LABEL="${1:-robustness|cache|profile|durability|net}"
BUILD_ROOT="${2:-build-san}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

for san in thread address; do
  dir="${BUILD_ROOT}-${san}"
  echo "== ${san} sanitizer lane (${dir}, label '${LABEL}')"
  cmake -S "${SRC_DIR}" -B "${dir}" -DGRAPHLOG_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j"${JOBS}" >/dev/null
  (cd "${dir}" && ctest -L "${LABEL}" --output-on-failure)
  echo "== ${san} lane clean"
done
echo "both sanitizer lanes clean on label '${LABEL}'"
