// RPQ ablation: three strategies for the Section 5 prototype's edge
// queries.
//
//   NFA product   — Thompson automaton, epsilon closures on the fly,
//   DFA product   — determinized + minimized table-driven automaton,
//   Datalog       — lambda translation + semi-naive engine.
//
// Expected shape: the automaton strategies beat the Datalog translation
// for all-pairs evaluation on larger graphs (no join machinery, no
// auxiliary relation materialization); DFA beats NFA when the expression
// has union/epsilon redundancy; all three agree exactly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "rpq/dfa.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

struct Workload {
  const char* name;
  const char* expr;
};

const Workload kWorkloads[] = {
    {"closure", "p+"},
    {"union-closure", "(p | q)+"},
    {"redundant-union", "(p | p p | p p p)+"},
    {"composition", "p q+ p"},
};

storage::Database MakeGraph(int n, uint64_t seed) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 3 * n, seed, &db, "p"), "gen p");
  CheckOk(workload::RandomDigraph(n, 2 * n, seed + 9, &db, "q"), "gen q");
  return db;
}

void Report() {
  bench::Banner("RPQ ablation — NFA vs DFA vs Datalog translation",
                "all three strategies agree; automaton product search "
                "avoids materializing closure relations");
  storage::Database db = MakeGraph(30, 4);
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  std::printf("%-18s %10s %10s %10s %8s\n", "expression", "nfa-states",
              "dfa-states", "min-states", "answers");
  for (const Workload& w : kWorkloads) {
    auto expr =
        CheckOk(gl::ParsePathExpr(w.expr, &db.symbols()), "parse");
    auto nfa = CheckOk(rpq::Nfa::Compile(expr), "nfa");
    auto dfa = CheckOk(rpq::Dfa::Determinize(nfa), "dfa");
    auto min = dfa.Minimize();
    auto answers = CheckOk(rpq::EvalRpq(g, expr), "eval");
    auto answers_dfa = CheckOk(rpq::EvalRpqDfa(g, expr), "eval dfa");
    std::printf("%-18s %10zu %10zu %10zu %8zu %s\n", w.expr,
                nfa.num_states(), dfa.num_states(), min.num_states(),
                answers.size(),
                answers.SetEquals(answers_dfa) ? "" : "(MISMATCH!)");
  }
  std::printf("\n");
}

void BM_Rpq(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(0)];
  int strategy = static_cast<int>(state.range(1));  // 0 nfa, 1 dfa, 2 datalog
  int n = static_cast<int>(state.range(2));
  storage::Database db = MakeGraph(n, 4);
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  auto expr = CheckOk(gl::ParsePathExpr(w.expr, &db.symbols()), "parse");
  std::string query = std::string("query rq { edge X -> Y : ") + w.expr +
                      "; distinguished X -> Y : rq; }";
  for (auto _ : state) {
    switch (strategy) {
      case 0: {
        auto r = CheckOk(rpq::EvalRpq(g, expr), "nfa eval");
        benchmark::DoNotOptimize(r.size());
        break;
      }
      case 1: {
        auto r = CheckOk(rpq::EvalRpqDfa(g, expr), "dfa eval");
        benchmark::DoNotOptimize(r.size());
        break;
      }
      case 2: {
        state.PauseTiming();
        storage::Database fresh = MakeGraph(n, 4);
        state.ResumeTiming();
        auto r = CheckOk(bench::EvalGraphLogText(query, &fresh), "datalog");
        benchmark::DoNotOptimize(r.result_tuples);
        break;
      }
    }
  }
  const char* names[] = {"nfa", "dfa", "datalog"};
  state.SetLabel(std::string(w.name) + "/" + names[strategy]);
}
void RpqArgs(benchmark::internal::Benchmark* b) {
  for (int w = 0; w < 4; ++w) {
    for (int s = 0; s < 3; ++s) {
      b->Args({w, s, 60});
    }
  }
}
BENCHMARK(BM_Rpq)->Apply(RpqArgs);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
