// Figure 5: path regular expressions as succinctness.
//
// The paper: "Without p.r.e.'s, it would have been necessary to use three
// query graphs, one of them with four nodes." This bench writes both
// formulations — the single p.r.e. edge and the explicit three-graph
// version — certifies they are equivalent on generated families, and
// compares evaluation cost (the p.r.e. compiles to the same auxiliary
// predicates, so cost parity is the expected shape).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

// One query graph, one p.r.e. edge (Figure 5).
const char* kPre =
    "query local-friend {\n"
    "  edge P -> F : (-(father | mother(_)))* friend;\n"
    "  edge F -> \"city0\" : residence;\n"
    "  distinguished P -> F : local-friend;\n"
    "}\n";

// The expanded formulation: parent-of, ancestor-or-self via closure, then
// the friend/residence pattern — three query graphs.
const char* kExpanded =
    "query parent-of {\n"
    "  edge P1 -> P2 : -father;\n"
    "  distinguished P1 -> P2 : parent-of;\n"
    "}\n"
    "query parent-of {\n"
    "  edge P1 -> P2 : -(mother(_));\n"
    "  distinguished P1 -> P2 : parent-of;\n"
    "}\n"
    "query local-friend2 {\n"
    "  edge P -> A : parent-of*;\n"
    "  edge A -> F : friend;\n"
    "  edge F -> \"city0\" : residence;\n"
    "  distinguished P -> F : local-friend2;\n"
    "}\n";

storage::Database MakeFamily(int generations) {
  storage::Database db;
  workload::FamilyOptions opts;
  opts.generations = generations;
  opts.friend_prob = 0.04;
  CheckOk(workload::Family(opts, &db), "family generator");
  return db;
}

void Report() {
  bench::Banner("Figure 5 — finding the local family friends",
                "one p.r.e. edge replaces three query graphs without "
                "changing the semantics");
  storage::Database db1 = MakeFamily(5);
  storage::Database db2 = MakeFamily(5);
  CheckOk(bench::EvalGraphLogText(kPre, &db1).status(), "p.r.e. version");
  CheckOk(bench::EvalGraphLogText(kExpanded, &db2).status(),
          "expanded version");
  std::string a = db1.RelationToString(db1.Intern("local-friend"));
  std::string b = db2.RelationToString(db2.Intern("local-friend2"));
  // Rename for comparison.
  size_t pos;
  while ((pos = b.find("local-friend2")) != std::string::npos) {
    b.replace(pos, 13, "local-friend");
  }
  std::printf("p.r.e. formulation  : %zu facts\n",
              db1.Find("local-friend")->size());
  std::printf("3-graph formulation : %zu facts\n",
              db2.Find("local-friend2")->size());
  std::printf("equivalent          : %s\n\n",
              a == b ? "YES" : "NO (MISMATCH!)");
}

void BM_PreFormulation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeFamily(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    auto s = CheckOk(bench::EvalGraphLogText(kPre, &db), "eval");
    benchmark::DoNotOptimize(s.result_tuples);
  }
}
BENCHMARK(BM_PreFormulation)->Arg(4)->Arg(6)->Arg(8);

void BM_ExpandedFormulation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeFamily(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    auto s = CheckOk(bench::EvalGraphLogText(kExpanded, &db), "eval");
    benchmark::DoNotOptimize(s.result_tuples);
  }
}
BENCHMARK(BM_ExpandedFormulation)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
