// Governor cost model: what governing a query costs when nothing trips,
// and how fast a cancel lands when something must be stopped.
//
//  * BM_EvalGovernorOverhead/{mode}: linear TC through the engine with
//    mode 0 = no governor (the null-pointer baseline), 1 = governor
//    attached but idle (token + per-round checks only), 2 = governor with
//    every budget armed high enough never to trip (the full round-boundary
//    accounting). The 0-vs-1 and 0-vs-2 deltas are the acceptance gate:
//    governed-but-untripped must sit within noise of ungoverned.
//  * BM_ParallelTcGovernorOverhead/{governed}: the same ablation on the
//    parallel TC fan-out, where the per-task check rides the pool lanes.
//  * BM_ParallelTcCancelLatency: manual-time measurement of the headline
//    robustness number — the wall-clock gap between CancellationToken::
//    Cancel() on a large in-flight parallel closure and the evaluator
//    returning kCancelled. Bounded by one DFS poll interval per lane, so
//    it should sit orders of magnitude under the closure's runtime.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "eval/engine.h"
#include "gov/governor.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "tc/parallel_tc.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

constexpr char kLinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

/// Governor whose budgets are armed but can never trip at this scale.
gov::GovernorContext UntrippableGovernor() {
  gov::GovernorContext g;
  g.budget.max_result_rows = 1'000'000'000;
  g.budget.max_delta_rows = 1'000'000'000;
  g.budget.max_rounds = 1'000'000'000;
  g.budget.max_bytes = 1ull << 40;
  return g;
}

/// mode: 0 = ungoverned, 1 = idle governor, 2 = budgets armed (untripped).
void BM_EvalGovernorOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  gov::GovernorContext idle;
  gov::GovernorContext armed = UntrippableGovernor();
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::RandomDigraph(300, 900, 42, &db), "digraph");
    eval::EvalOptions opts;
    if (mode == 1) opts.governor = &idle;
    if (mode == 2) opts.governor = &armed;
    state.ResumeTiming();
    auto r = eval::EvaluateText(kLinearTc, &db, opts);
    CheckOk(r.status(), "linear tc");
    benchmark::DoNotOptimize(r->tuples_derived);
  }
}
BENCHMARK(BM_EvalGovernorOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("mode")
    ->Unit(benchmark::kMillisecond);

void BM_ParallelTcGovernorOverhead(benchmark::State& state) {
  const bool governed = state.range(0) != 0;
  storage::Database db;
  CheckOk(workload::RandomDigraph(600, 2400, 7, &db), "digraph");
  const storage::Relation& edges = *db.Find("edge");
  gov::GovernorContext armed = UntrippableGovernor();
  for (auto _ : state) {
    auto r = tc::ParallelTransitiveClosure(edges, 4, nullptr,
                                           governed ? &armed : nullptr);
    CheckOk(r.status(), "parallel tc");
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_ParallelTcGovernorOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("governed")
    ->Unit(benchmark::kMillisecond);

/// Manual time: from Cancel() to the evaluator's return. The worker is
/// launched per iteration and cancelled a moment after it starts; the
/// closure itself takes far longer than the cancel delay, so nearly every
/// iteration measures a genuine mid-flight abort (the `cancelled` counter
/// reports the fraction).
void BM_ParallelTcCancelLatency(benchmark::State& state) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(1200, 6000, 99, &db), "digraph");
  const storage::Relation& edges = *db.Find("edge");
  int64_t cancelled = 0, total = 0;
  for (auto _ : state) {
    gov::GovernorContext g;
    gov::CancellationToken token = g.token;
    std::atomic<bool> started{false};
    Status result = Status::OK();
    std::thread worker([&] {
      started.store(true, std::memory_order_release);
      result = tc::ParallelTransitiveClosure(edges, 4, nullptr, &g).status();
    });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto t0 = std::chrono::steady_clock::now();
    token.Cancel();
    worker.join();
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    ++total;
    if (result.code() == StatusCode::kCancelled) ++cancelled;
  }
  state.counters["cancelled_fraction"] =
      total == 0 ? 0.0 : static_cast<double>(cancelled) / total;
}
BENCHMARK(BM_ParallelTcCancelLatency)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void Report() {
  bench::Banner(
      "Query governor: cancellation latency and untripped overhead",
      "an idle or armed-but-untripped governor costs pointer tests and "
      "round-boundary arithmetic (within noise); a cancel lands in "
      "poll-interval time, orders of magnitude under the query runtime");

  // Sanity: the governed paths actually engage at this scale.
  storage::Database db;
  CheckOk(workload::RandomDigraph(300, 900, 42, &db), "digraph");
  gov::GovernorContext g = UntrippableGovernor();
  eval::EvalOptions opts;
  opts.governor = &g;
  eval::EvalStats stats = CheckOk(eval::EvaluateText(kLinearTc, &db, opts),
                                  "governed linear tc");
  std::printf("governed run: %llu tuples, %llu rounds, truncated=%d\n",
              static_cast<unsigned long long>(stats.tuples_derived),
              static_cast<unsigned long long>(stats.iterations),
              stats.truncated ? 1 : 0);

  gov::GovernorContext capped;
  capped.budget.max_rounds = 3;
  capped.budget.return_partial = true;
  storage::Database db2;
  CheckOk(workload::RandomDigraph(300, 900, 42, &db2), "digraph");
  eval::EvalOptions opts2;
  opts2.governor = &capped;
  eval::EvalStats partial = CheckOk(
      eval::EvaluateText(kLinearTc, &db2, opts2), "capped linear tc");
  std::printf("capped run (max_rounds=3, partial): %llu tuples, "
              "truncated=%d (%s)\n",
              static_cast<unsigned long long>(partial.tuples_derived),
              partial.truncated ? 1 : 0, partial.truncated_by.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
