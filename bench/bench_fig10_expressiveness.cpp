// Figure 10: the expressiveness diagram, certified constructively.
//
// The paper's Figure 10 states TC = STC-DATALOG = GRAPHLOG = SL-DATALOG
// (Theorem 3.3). The inclusions with constructive content are exercised
// on a query corpus:
//
//   GRAPHLOG  --lambda-->  SL-DATALOG        (every translated program is
//                                             linear & stratified)
//   SL-DATALOG --Alg 3.1--> STC-DATALOG      (output is TC-shaped and
//                                             equivalent on random EDBs)
//
// and the monotone chain (Corollary 3.3) is checked by running the
// corpus' negation-free members through the same pipeline.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "testing/equivalence.h"
#include "translate/sl_to_stc.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

struct CorpusEntry {
  const char* name;
  const char* graphlog;   // graphical query text
  const char* compare;    // predicate to diff
  bool monotone;          // negation-free (Corollary 3.3 side)
};

const CorpusEntry kCorpus[] = {
    {"closure", "query t { edge X -> Y : e+; distinguished X -> Y : t; }",
     "t", true},
    {"alternating-closure",
     "query t { edge X -> Y : (e | f)+; distinguished X -> Y : t; }", "t",
     true},
    {"composition",
     "query t { edge X -> Y : e (f e)+; distinguished X -> Y : t; }", "t",
     true},
    {"inverse-closure",
     "query t { edge X -> Y : (-e)+ f; distinguished X -> Y : t; }", "t",
     true},
    {"negated-closure",
     "query t { edge X -> Y : e; edge X -> Y : !(f+); "
     "distinguished X -> Y : t; }",
     "t", false},
    {"two-level",
     "query base { edge X -> Y : e f; distinguished X -> Y : base; }\n"
     "query t { edge X -> Y : base+; distinguished X -> Y : t; }",
     "t", true},
};

void Report() {
  bench::Banner("Figure 10 — relative expressive power",
                "GRAPHLOG ⊆ SL-DATALOG ⊆ STC-DATALOG constructively, with "
                "semantic preservation at every arrow (Theorem 3.3)");
  std::printf("%-20s %8s %10s %8s %10s %6s\n", "query", "linear",
              "stratified", "tc-form", "equivalent", "mono");
  for (const CorpusEntry& entry : kCorpus) {
    storage::Database db;
    auto q = CheckOk(gl::ParseGraphicalQuery(entry.graphlog, &db.symbols()),
                     "parse");
    auto t = CheckOk(gl::Translate(q, &db.symbols()), "lambda");

    // Arrow 1: lambda output is stratified linear Datalog.
    bool linear = datalog::IsLinear(t.program);
    bool stratified =
        datalog::Stratify(t.program, db.symbols()).ok();

    // Arrow 2: Algorithm 3.1 lands in STC-DATALOG.
    std::string sl_text = t.program.ToString(db.symbols());
    auto stc = CheckOk(
        translate::TranslateSlToStc(t.program, &db.symbols()), "alg 3.1");
    bool tc_form = datalog::IsTcProgram(stc.program);

    // Semantic preservation end to end.
    testing::EquivalenceOptions opts;
    opts.trials = 6;
    opts.compare = {entry.compare};
    opts.edb.domain_size = 6;
    opts.edb.fill = 0.25;
    auto rep = CheckOk(
        testing::CheckEquivalent(sl_text, stc.program.ToString(db.symbols()),
                                 opts),
        "equivalence");

    std::printf("%-20s %8s %10s %8s %10s %6s\n", entry.name,
                linear ? "yes" : "NO!", stratified ? "yes" : "NO!",
                tc_form ? "yes" : "NO!", rep.equivalent ? "yes" : "NO!",
                entry.monotone ? "yes" : "-");
    if (!rep.equivalent) {
      std::printf("    MISMATCH: %s\n", rep.detail.c_str());
    }
  }
  std::printf("\n");
}

void BM_LambdaPipeline(benchmark::State& state) {
  const CorpusEntry& entry = kCorpus[state.range(0)];
  for (auto _ : state) {
    storage::Database db;
    auto q = CheckOk(gl::ParseGraphicalQuery(entry.graphlog, &db.symbols()),
                     "parse");
    auto t = CheckOk(gl::Translate(q, &db.symbols()), "lambda");
    auto stc = CheckOk(
        translate::TranslateSlToStc(t.program, &db.symbols()), "alg 3.1");
    benchmark::DoNotOptimize(stc.program.size());
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_LambdaPipeline)->DenseRange(0, 5);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
