// Figure 11: aggregation and path summarization on task schedules.
//
// Runs the full three-graph Figure 11 pipeline (duration-onto-edge, then
// max<sum<D>> path summarization, then arithmetic delayed-start) over
// growing task DAGs, and cross-checks the critical-path values against an
// independent longest-path oracle. Shape claim: summarization stays
// polynomial (the paper's Section 4 design goal versus exponential
// set-based alternatives).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kQuery =
    "query affects-d {\n"
    "  edge T1 -> T2 : affects;\n"
    "  edge T2 -> D : duration;\n"
    "  distinguished T1 -> T2 : affects-d(D);\n"
    "}\n"
    "query earlier-start {\n"
    "  summarize E = max<sum<D>> over affects-d(D);\n"
    "  distinguished T1 -> T2 : earlier-start(E);\n"
    "}\n"
    "query delayed-start {\n"
    "  edge T -> T1 : earlier-start(E);\n"
    "  edge T -> DS : delay;\n"
    "  edge T -> S : scheduled-start;\n"
    "  where NS := S + DS + E;\n"
    "  distinguished T1 -> NS : delayed-start(T);\n"
    "}\n";

storage::Database MakeTasks(int n) {
  storage::Database db;
  workload::TasksOptions opts;
  opts.num_tasks = n;
  opts.edge_prob = std::min(0.3, 8.0 / n);
  CheckOk(workload::Tasks(opts, &db), "tasks generator");
  return db;
}

/// Independent oracle: longest path by topological DP over the DAG
/// (tasks are t0..t{n-1} with edges i -> j only for i < j).
std::map<std::pair<std::string, std::string>, int64_t> LongestPathOracle(
    const storage::Database& db) {
  const storage::Relation* aff = db.Find("affects");
  const storage::Relation* dur = db.Find("duration");
  std::map<std::string, int64_t> duration;
  for (const auto& t : dur->rows()) {
    duration[t[0].ToString(db.symbols())] = t[1].AsInt();
  }
  // Edge weight of (a -> b) is duration(b) (the affects-d convention).
  std::vector<std::tuple<int, int, std::string, std::string>> edges;
  for (const auto& t : aff->rows()) {
    std::string a = t[0].ToString(db.symbols());
    std::string b = t[1].ToString(db.symbols());
    edges.emplace_back(std::stoi(a.substr(1)), std::stoi(b.substr(1)), a, b);
  }
  std::sort(edges.begin(), edges.end());
  std::map<std::pair<std::string, std::string>, int64_t> best;
  // DP over edges in topological (index) order: best(s, v).
  for (const auto& [ia, ib, a, b] : edges) {
    // Start a new path at a.
    auto key = std::make_pair(a, b);
    int64_t w = duration[b];
    auto it = best.find(key);
    if (it == best.end() || it->second < w) best[key] = w;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [ia, ib, a, b] : edges) {
      int64_t w = duration[b];
      // Extend every best(s, a) by this edge.
      for (const auto& [key, val] : std::map<std::pair<std::string,
                                             std::string>, int64_t>(best)) {
        if (key.second != a) continue;
        auto nk = std::make_pair(key.first, b);
        int64_t cand = val + w;
        auto it = best.find(nk);
        if (it == best.end() || it->second < cand) {
          best[nk] = cand;
          changed = true;
        }
      }
    }
  }
  return best;
}

void Report() {
  bench::Banner("Figure 11 — delayed tasks via path summarization",
                "earlier-start(T1,T2,E): E is the longest sum of durations "
                "over all affects-paths; matches an independent DAG oracle");
  storage::Database db = MakeTasks(14);
  auto stats = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
  auto oracle = LongestPathOracle(db);

  const storage::Relation* es = db.Find("earlier-start");
  size_t checked = 0, agreed = 0;
  for (const auto& t : es->rows()) {
    auto key = std::make_pair(t[0].ToString(db.symbols()),
                              t[1].ToString(db.symbols()));
    auto it = oracle.find(key);
    ++checked;
    if (it != oracle.end() && it->second == t[2].AsInt()) ++agreed;
  }
  std::printf("earlier-start facts: %zu; oracle agreement: %zu/%zu %s\n",
              es->size(), agreed, checked,
              (agreed == checked && checked == oracle.size())
                  ? "(MATCH)"
                  : "(MISMATCH!)");
  std::printf("delayed-start facts: %zu; graphs summarized: %llu\n\n",
              db.Find("delayed-start")->size(),
              static_cast<unsigned long long>(stats.graphs_summarized));
}

void BM_Figure11(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeTasks(n);
    state.ResumeTiming();
    auto s = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
    benchmark::DoNotOptimize(s.result_tuples);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Figure11)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
