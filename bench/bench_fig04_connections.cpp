// Figure 4: feasible flight connections.
//
// Runs the two-query-graph Figure 4 query on generated flight networks of
// increasing size and reports how evaluation cost scales; the closure over
// `feasible` dominates, so cost grows with the number of feasible pairs
// (roughly quadratic in flights for a fixed city count), not exponentially.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kQuery =
    "query feasible {\n"
    "  edge F1 -> A1 : arrival;\n"
    "  edge F2 -> D2 : departure;\n"
    "  edge A1 -> D2 : <;\n"
    "  edge F1 -> C : to;\n"
    "  edge F2 -> C : from;\n"
    "  distinguished F1 -> F2 : feasible;\n"
    "}\n"
    "query stop-connected {\n"
    "  edge C1 -> C2 : (-from) feasible+ to;\n"
    "  distinguished C1 -> C2 : stop-connected;\n"
    "}\n";

storage::Database MakeFlights(int flights) {
  storage::Database db;
  workload::FlightsOptions opts;
  opts.num_flights = flights;
  opts.num_cities = std::max(4, flights / 10);
  CheckOk(workload::Flights(opts, &db), "flights generator");
  return db;
}

void Report() {
  bench::Banner("Figure 4 — feasible flight connections",
                "the comparison edge + inverse/closure/composition p.r.e. "
                "compute connection reachability");
  for (int flights : {50, 100, 200}) {
    storage::Database db = MakeFlights(flights);
    auto stats = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
    std::printf(
        "flights=%4d  feasible=%6zu  stop-connected=%5zu  "
        "(rounds=%llu firings=%llu)\n",
        flights, db.Find("feasible")->size(),
        db.Find("stop-connected")->size(),
        static_cast<unsigned long long>(stats.datalog.iterations),
        static_cast<unsigned long long>(stats.datalog.rule_firings));
  }
  std::printf("\n");
}

void BM_Figure4(benchmark::State& state) {
  int flights = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeFlights(flights);
    state.ResumeTiming();
    auto stats = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
    benchmark::DoNotOptimize(stats.result_tuples);
  }
  state.SetComplexityN(flights);
}
BENCHMARK(BM_Figure4)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
