// The src/cache subsystem: result-cache hit latency against cold
// evaluation, and incremental view maintenance against full recompute.
//
// Expected shape: a warm hit on a repeated TC-heavy query wins by >= 10x
// (the serve revalidates relation generations instead of re-deriving the
// closure), and for a one-edge delta an incremental view refresh beats a
// full recompute by a factor that grows with the materialized closure.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "cache/result_cache.h"
#include "cache/view_catalog.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kTcQuery =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

storage::Database MakeRandom(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 3 * n, /*seed=*/7, &db), "digraph");
  return db;
}

storage::Database MakeChain(int n) {
  storage::Database db;
  CheckOk(workload::Chain(n, &db), "chain");
  return db;
}

QueryResponse RunCached(storage::Database* db, cache::ResultCache* rc) {
  QueryRequest req = QueryRequest::GraphLog(kTcQuery);
  req.options.cache.result_cache = rc;
  return CheckOk(graphlog::Run(req, db), "eval");
}

/// Appends one edge to the chain's tail, staling any TC view over it.
void GrowChain(storage::Database* db, int* next) {
  std::string from = "n" + std::to_string(*next);
  std::string to = "n" + std::to_string(*next + 1);
  CheckOk(db->AddFact("edge", {Value::Sym(db->Intern(from)),
                               Value::Sym(db->Intern(to))}),
          "insert");
  ++*next;
}

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void Report() {
  bench::Banner(
      "Result cache + materialized views",
      "repeated queries answer from the cache >= 10x faster; a one-edge "
      "delta refreshes a TC view incrementally, not by recompute");

  // Hit vs cold on a TC-heavy random digraph.
  storage::Database db = MakeRandom(160);
  cache::ResultCache rc;
  auto t0 = std::chrono::steady_clock::now();
  QueryResponse cold = RunCached(&db, &rc);
  double cold_us = MicrosSince(t0);
  t0 = std::chrono::steady_clock::now();
  QueryResponse hit = RunCached(&db, &rc);
  double hit_us = MicrosSince(t0);
  if (!hit.cache_hit) {
    std::fprintf(stderr, "FATAL: repeated query did not hit the cache\n");
    std::abort();
  }
  std::printf("  cold TC evaluation: %10.0f us  (%zu result tuples)\n",
              cold_us, static_cast<size_t>(cold.stats.result_tuples));
  std::printf("  warm cache hit:     %10.1f us  -> %.0fx speedup\n\n",
              hit_us, cold_us / hit_us);

  // Incremental vs full refresh after a one-edge delta on a long chain.
  storage::Database chain = MakeChain(400);
  cache::ViewCatalog views;
  auto def = CheckOk(MakeViewDefinition("t", kTcQuery, &chain), "define");
  CheckOk(views.Define(std::move(def), &chain), "materialize");
  int next = 400;
  GrowChain(&chain, &next);
  t0 = std::chrono::steady_clock::now();
  CheckOk(views.Refresh("t", &chain), "incremental refresh");
  double inc_us = MicrosSince(t0);
  GrowChain(&chain, &next);
  t0 = std::chrono::steady_clock::now();
  CheckOk(views.Refresh("t", &chain, nullptr, /*force_full=*/true),
          "full refresh");
  double full_us = MicrosSince(t0);
  std::printf("  one-edge delta, chain of 400 (view rows: %zu)\n",
              chain.Find("t")->size());
  std::printf("  incremental refresh: %9.0f us\n", inc_us);
  std::printf("  full recompute:      %9.0f us  -> %.0fx\n\n", full_us,
              full_us / inc_us);
}

void BM_TcColdEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database fresh = MakeRandom(n);
    state.ResumeTiming();
    auto r = CheckOk(graphlog::Run(QueryRequest::GraphLog(kTcQuery), &fresh),
                     "eval");
    benchmark::DoNotOptimize(r.stats.result_tuples);
  }
}
BENCHMARK(BM_TcColdEval)->Arg(64)->Arg(128);

void BM_TcCacheHit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  storage::Database db = MakeRandom(n);
  cache::ResultCache rc;
  RunCached(&db, &rc);  // prime
  for (auto _ : state) {
    auto r = RunCached(&db, &rc);
    benchmark::DoNotOptimize(r.cache_hit);
  }
}
BENCHMARK(BM_TcCacheHit)->Arg(64)->Arg(128);

/// One-edge delta per iteration; the chain (and its closure) grows as the
/// benchmark runs, so compare against BM_ViewRefreshFull at the same arg,
/// which faces the same growth.
void BM_ViewRefreshIncremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  storage::Database db = MakeChain(n);
  cache::ViewCatalog views;
  auto def = CheckOk(MakeViewDefinition("t", kTcQuery, &db), "define");
  CheckOk(views.Define(std::move(def), &db), "materialize");
  int next = n;
  for (auto _ : state) {
    state.PauseTiming();
    GrowChain(&db, &next);
    state.ResumeTiming();
    CheckOk(views.Refresh("t", &db), "refresh");
  }
}
BENCHMARK(BM_ViewRefreshIncremental)->Arg(96);

void BM_ViewRefreshFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  storage::Database db = MakeChain(n);
  cache::ViewCatalog views;
  auto def = CheckOk(MakeViewDefinition("t", kTcQuery, &db), "define");
  CheckOk(views.Define(std::move(def), &db), "materialize");
  int next = n;
  for (auto _ : state) {
    state.PauseTiming();
    GrowChain(&db, &next);
    state.ResumeTiming();
    CheckOk(views.Refresh("t", &db, nullptr, /*force_full=*/true), "refresh");
  }
}
BENCHMARK(BM_ViewRefreshFull)->Arg(96);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
