// Parallel-evaluation claim: "GraphLog is in QNC, hence amenable to
// efficient parallel implementations" (Section 6).
//
// Measures the speedup of per-source-parallel transitive closure as
// workers grow, on a graph large enough for the search to dominate the
// (sequential) merge. Expected shape: near-linear scaling up to the
// machine's core count, then flat.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench/bench_util.h"
#include "storage/database.h"
#include "tc/parallel_tc.h"
#include "tc/transitive_closure.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

storage::Database MakeGraph(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 4 * n, 123, &db), "random digraph");
  return db;
}

void Report() {
  bench::Banner("Parallel TC — the Section 6 QNC claim, operationally",
                "per-source closure partitions across workers; results "
                "identical to the sequential kernels");
  storage::Database db = MakeGraph(200);
  const storage::Relation& e = *db.Find("edge");
  auto seq = CheckOk(tc::TransitiveClosure(e, tc::TcAlgorithm::kBfs),
                     "sequential");
  auto par = CheckOk(tc::ParallelTransitiveClosure(e, 4), "parallel");
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  std::printf("closure size: sequential=%zu parallel=%zu %s\n\n",
              seq.size(), par.size(),
              seq.SetEquals(par) ? "(MATCH)" : "(MISMATCH!)");
}

void BM_ParallelTc(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  storage::Database db = MakeGraph(400);
  const storage::Relation& e = *db.Find("edge");
  for (auto _ : state) {
    auto tc = CheckOk(tc::ParallelTransitiveClosure(e, threads), "closure");
    benchmark::DoNotOptimize(tc.size());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ParallelTc)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SequentialBfsBaseline(benchmark::State& state) {
  storage::Database db = MakeGraph(400);
  const storage::Relation& e = *db.Find("edge");
  for (auto _ : state) {
    auto tc = CheckOk(tc::TransitiveClosure(e, tc::TcAlgorithm::kBfs),
                      "closure");
    benchmark::DoNotOptimize(tc.size());
  }
}
BENCHMARK(BM_SequentialBfsBaseline);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
