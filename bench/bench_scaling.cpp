// Scaling: the data-complexity shape behind Lemmas 3.5 / 3.6.
//
// The theory places GraphLog (= SL-DATALOG) in NLOGSPACE ⊆ QNC ⊂ PTIME;
// operationally that means polynomial-time bottom-up evaluation. This
// bench measures GraphLog closure evaluation against database size and
// fits the growth (google-benchmark's complexity report), and contrasts
// a linear program with a nonlinear (quadratic-rule) one computing the
// same closure: both are polynomial, but the nonlinear rule joins the
// whole closure with itself, so its per-round work grows faster — the
// practical reading of "linear Datalog is believed to express most real
// life recursive queries" at lower cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

storage::Database MakeRandom(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 3 * n, 7, &db), "random digraph");
  return db;
}

void Report() {
  bench::Banner("Scaling — polynomial data complexity (Lemmas 3.5/3.6)",
                "GraphLog evaluation cost grows polynomially with the "
                "database; linear recursion does less per-round work than "
                "nonlinear recursion for the same query");
  const char* linear =
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n";
  const char* nonlinear =
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- t(X, Z), t(Z, Y).\n";
  std::printf("%6s | %14s %14s (rule firings)\n", "n", "linear",
              "nonlinear");
  for (int n : {32, 64, 128}) {
    storage::Database db1 = MakeRandom(n);
    storage::Database db2 = MakeRandom(n);
    // Rename e: generator emits `edge`.
    auto s1 = CheckOk(eval::EvaluateText(
                          "t(X, Y) :- edge(X, Y).\n"
                          "t(X, Y) :- edge(X, Z), t(Z, Y).\n",
                          &db1),
                      "linear");
    auto s2 = CheckOk(eval::EvaluateText(
                          "t(X, Y) :- edge(X, Y).\n"
                          "t(X, Y) :- t(X, Z), t(Z, Y).\n",
                          &db2),
                      "nonlinear");
    std::printf("%6d | %14llu %14llu\n", n,
                static_cast<unsigned long long>(s1.rule_firings),
                static_cast<unsigned long long>(s2.rule_firings));
  }
  (void)linear;
  (void)nonlinear;
  std::printf("\n");
}

void BM_GraphLogClosureScaling(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeRandom(n);
    state.ResumeTiming();
    auto s = CheckOk(
        bench::EvalGraphLogText(
            "query t { edge X -> Y : edge+; distinguished X -> Y : t; }",
            &db),
        "eval");
    benchmark::DoNotOptimize(s.result_tuples);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GraphLogClosureScaling)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Complexity();

void BM_LinearVsNonlinear(benchmark::State& state) {
  bool linear = state.range(0) == 0;
  int n = static_cast<int>(state.range(1));
  const char* prog = linear ? "t(X, Y) :- edge(X, Y).\n"
                              "t(X, Y) :- edge(X, Z), t(Z, Y).\n"
                            : "t(X, Y) :- edge(X, Y).\n"
                              "t(X, Y) :- t(X, Z), t(Z, Y).\n";
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeRandom(n);
    state.ResumeTiming();
    auto s = CheckOk(eval::EvaluateText(prog, &db), "eval");
    benchmark::DoNotOptimize(s.tuples_derived);
  }
  state.SetLabel(linear ? "linear" : "nonlinear");
}
BENCHMARK(BM_LinearVsNonlinear)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 128})
    ->Args({1, 128});

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
