// Tracing- and metrics-overhead ablation for the observability layer.
//
// The same queries evaluated through graphlog::Run with tracing off (the
// default: every instrumentation site is one null-pointer test), tracing
// on (span tree + metrics recorded), and the metrics registry attached
// (process-wide counters folded at the same sites). The disabled delta is
// the acceptance gate — it must stay under a few percent; the enabled
// costs show what a trace or a registry actually buys and costs.
//
//  * BM_GraphLogQuery/{tracing,metrics}: the Figure 4 two-graph query
//    over the Figure 1 flights — the figure-regression workload.
//  * BM_DatalogLinearTc/{tracing,metrics}: linear TC on a random digraph,
//    many fixpoint rounds -> many round spans / histogram samples.
//  * BM_DatalogNonlinearTc/{tracing,metrics}: nonlinear TC — heavier
//    rounds, so per-round overhead is better amortized.
//  * BM_ExplainOnly: parse + translate + stratify + plan, no execution.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

constexpr char kFigure4Query[] =
    "query feasible {\n"
    "  edge F1 -> A1 : arrival;\n"
    "  edge F2 -> D2 : departure;\n"
    "  edge A1 -> D2 : <;\n"
    "  edge F1 -> C : to;\n"
    "  edge F2 -> C : from;\n"
    "  distinguished F1 -> F2 : feasible;\n"
    "}\n"
    "query stop-connected {\n"
    "  edge C1 -> C2 : (-from) feasible+ to;\n"
    "  distinguished C1 -> C2 : stop-connected;\n"
    "}\n";

constexpr char kLinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

constexpr char kNonlinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n";

/// state.range(0) == 1 turns tracing on; state.range(1) == 1 attaches a
/// process-wide metrics registry.
void BM_GraphLogQuery(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  const bool metrics = state.range(1) != 0;
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::Figure1Flights(&db), "figure 1 flights");
    QueryRequest req = QueryRequest::GraphLog(kFigure4Query);
    req.options.observability.tracing = tracing;
    if (metrics) req.options.observability.metrics = &registry;
    state.ResumeTiming();
    auto r = Run(req, &db);
    CheckOk(r.status(), "figure 4 query");
    benchmark::DoNotOptimize(r->trace);
  }
}
BENCHMARK(BM_GraphLogQuery)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->ArgNames({"tracing", "metrics"})
    ->Unit(benchmark::kMicrosecond);

void RunDatalogTc(benchmark::State& state, const char* program, int n,
                  int m) {
  const bool tracing = state.range(0) != 0;
  const bool metrics = state.range(1) != 0;
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::RandomDigraph(n, m, 42, &db), "random digraph");
    QueryRequest req = QueryRequest::Datalog(program);
    req.options.observability.tracing = tracing;
    if (metrics) req.options.observability.metrics = &registry;
    state.ResumeTiming();
    auto r = Run(req, &db);
    CheckOk(r.status(), "datalog tc");
    benchmark::DoNotOptimize(r->stats.datalog.tuples_derived);
  }
}

void BM_DatalogLinearTc(benchmark::State& state) {
  RunDatalogTc(state, kLinearTc, 300, 1200);
}
BENCHMARK(BM_DatalogLinearTc)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->ArgNames({"tracing", "metrics"})
    ->Unit(benchmark::kMillisecond);

void BM_DatalogNonlinearTc(benchmark::State& state) {
  RunDatalogTc(state, kNonlinearTc, 150, 600);
}
BENCHMARK(BM_DatalogNonlinearTc)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->ArgNames({"tracing", "metrics"})
    ->Unit(benchmark::kMillisecond);

void BM_ExplainOnly(benchmark::State& state) {
  storage::Database db;
  CheckOk(workload::Figure1Flights(&db), "figure 1 flights");
  for (auto _ : state) {
    QueryRequest req = QueryRequest::GraphLog(kFigure4Query);
    req.options.observability.explain = true;
    req.options.observability.explain_only = true;
    auto r = Run(req, &db);
    CheckOk(r.status(), "explain");
    benchmark::DoNotOptimize(r->explain);
  }
}
BENCHMARK(BM_ExplainOnly)->Unit(benchmark::kMicrosecond);

void Report() {
  bench::Banner(
      "Observability overhead ablation",
      "tracing off (default null-tracer path) vs on, same queries; the "
      "off-vs-baseline delta is the zero-overhead claim");

  // Sanity: the traced run records the expected artifacts.
  storage::Database db;
  CheckOk(workload::Figure1Flights(&db), "figure 1 flights");
  obs::MetricsRegistry registry;
  QueryRequest req = QueryRequest::GraphLog(kFigure4Query);
  req.options.observability.tracing = true;
  req.options.observability.explain = true;
  req.options.observability.metrics = &registry;
  auto r = Run(req, &db);
  CheckOk(r.status(), "traced figure 4 query");
  obs::MetricsSnapshot snap = registry.Snapshot();
  std::printf("traced run: %zu root spans, %zu counters, explain %zu "
              "bytes, deterministic export %zu bytes\n",
              r->trace.spans.size(),
              r->trace.metrics.counters().size(), r->explain.size(),
              r->trace.ToJson(/*include_timings=*/false).size());
  std::printf("registry: %zu counters, %zu gauges, %zu histograms, "
              "deterministic export %zu bytes\n",
              snap.counters.size(), snap.gauges.size(),
              snap.histograms.size(),
              snap.ToJson(/*include_timings=*/false).size());
}

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
