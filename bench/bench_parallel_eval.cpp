// Parallel semi-naive evaluation + incremental index maintenance.
//
// Two ablations behind the engine's perf work:
//
//  1. Thread ablation: the same recursive Datalog program evaluated with
//     num_threads in {1, 2, 4, 8}. Results are bit-identical across lane
//     counts (checked in the report header); only wall-clock may differ.
//     Expected shape: speedup up to the core count, flat beyond (on a
//     single-core host the curve is flat with small pool overhead).
//
//  2. Index maintenance ablation: a fixpoint-shaped insert/probe loop on
//     one Relation, with indexes maintained incrementally (the new
//     default) vs dropped and rebuilt after every insert round (the old
//     behavior, simulated with DropIndexes). Expected shape: incremental
//     is O(new rows) per round and wins by a growing factor.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "eval/engine.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

constexpr char kLinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

constexpr char kNonlinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n";

storage::Database MakeGraph(int n, int m, uint64_t seed) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, m, seed, &db), "random digraph");
  return db;
}

eval::EvalStats Evaluate(const char* program, storage::Database* db,
                         unsigned threads) {
  eval::EvalOptions opts;
  opts.num_threads = threads;
  return CheckOk(eval::EvaluateText(program, db, opts), "evaluate");
}

void Report() {
  bench::Banner(
      "Parallel semi-naive evaluation + incremental indexes",
      "num_threads is invisible in results; indexes append instead of "
      "rebuilding across fixpoint rounds");
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());

  // Cross-check: serial and parallel runs must agree tuple-for-tuple,
  // in insertion order, including stats.
  storage::Database serial_db = MakeGraph(300, 1200, 99);
  eval::EvalStats serial = Evaluate(kLinearTc, &serial_db, 1);
  bool all_match = true;
  for (unsigned threads : {2u, 4u, 8u}) {
    storage::Database db = MakeGraph(300, 1200, 99);
    eval::EvalStats stats = Evaluate(kLinearTc, &db, threads);
    bool match =
        db.Find("tc")->rows() == serial_db.Find("tc")->rows() &&
        stats.rule_firings == serial.rule_firings &&
        stats.tuples_derived == serial.tuples_derived &&
        stats.index_builds == serial.index_builds &&
        stats.index_appends == serial.index_appends;
    all_match = all_match && match;
  }
  std::printf("serial vs {2,4,8}-lane results: %s\n",
              all_match ? "(MATCH)" : "(MISMATCH!)");
  std::printf(
      "linear tc stats: %llu derived, %llu index builds, %llu index "
      "appends\n\n",
      static_cast<unsigned long long>(serial.tuples_derived),
      static_cast<unsigned long long>(serial.index_builds),
      static_cast<unsigned long long>(serial.index_appends));
}

// --- 1. thread ablation -----------------------------------------------------

void BM_LinearTcThreads(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeGraph(400, 1600, 42);
    state.ResumeTiming();
    eval::EvalStats stats = Evaluate(kLinearTc, &db, threads);
    benchmark::DoNotOptimize(stats.tuples_derived);
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_LinearTcThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_NonlinearTcThreads(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeGraph(250, 1000, 42);
    state.ResumeTiming();
    eval::EvalStats stats = Evaluate(kNonlinearTc, &db, threads);
    benchmark::DoNotOptimize(stats.tuples_derived);
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_NonlinearTcThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- 2. incremental vs rebuild index maintenance ----------------------------

// A fixpoint-shaped workload on one relation: per round, insert a batch of
// new rows and probe once per row inserted so far (a delta-join reads every
// frontier tuple against the index).
template <bool kIncremental>
void IndexMaintenanceLoop(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const int batch = 64;
  for (auto _ : state) {
    storage::Relation r(2);
    size_t total_hits = 0;
    int next = 0;
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < batch; ++i, ++next) {
        r.Insert({Value::Int(next % 97), Value::Int(next)});
      }
      if (!kIncremental) r.DropIndexes();  // simulate rebuild-per-round
      for (int key = 0; key < 97; ++key) {
        total_hits += r.Probe({0}, {Value::Int(key)}).size();
      }
    }
    benchmark::DoNotOptimize(total_hits);
  }
  state.SetLabel(std::to_string(rounds) + " rounds");
}

void BM_IndexIncremental(benchmark::State& state) {
  IndexMaintenanceLoop<true>(state);
}
void BM_IndexRebuild(benchmark::State& state) {
  IndexMaintenanceLoop<false>(state);
}
BENCHMARK(BM_IndexIncremental)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_IndexRebuild)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
