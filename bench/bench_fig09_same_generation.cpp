// Figures 8 & 9: Algorithm 3.1 on the same-generation query.
//
// Prints the translated program (which must have the Figure 9 structure),
// certifies input/output equivalence on random parent relations
// (Theorem 3.2), and compares the evaluation cost of the direct linear
// program against its TC form. Expected shape: the TC form pays a
// constant-factor overhead for the wider configuration tuples — it is the
// *normal form*, not an optimization — while both scale the same way.

#include <benchmark/benchmark.h>

#include <set>

#include "bench/bench_util.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "storage/database.h"
#include "testing/equivalence.h"
#include "translate/sl_to_stc.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kSg =
    "sg(X, X) :- person(X).\n"
    "sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).\n";

storage::Database MakeTree(int depth) {
  storage::Database db;
  CheckOk(workload::KaryTree(2, depth, &db, "parent"), "tree generator");
  // person(x) for every node in the tree.
  const storage::Relation* parent = db.Find("parent");
  std::set<Value> people;
  for (const auto& t : parent->rows()) {
    people.insert(t[0]);
    people.insert(t[1]);
  }
  for (const Value& p : people) {
    CheckOk(db.AddFact("person", {p}), "person facts");
  }
  return db;
}

std::string TranslateSg(SymbolTable* syms) {
  auto prog = CheckOk(datalog::ParseProgram(kSg, syms), "parse sg");
  auto out = CheckOk(translate::TranslateSlToStc(prog, syms), "algorithm 3.1");
  return out.program.ToString(*syms);
}

void Report() {
  bench::Banner("Figures 8 & 9 — same generation through Algorithm 3.1",
                "every SL-DATALOG program has an equivalent STC-DATALOG "
                "program (Theorem 3.2)");
  std::printf("input (Figure 8):\n%s\n", kSg);
  SymbolTable syms;
  std::string translated = TranslateSg(&syms);
  std::printf("Algorithm 3.1 output (Figure 9 structure):\n%s\n",
              translated.c_str());

  // Structural certification.
  {
    SymbolTable s2;
    auto out_prog =
        CheckOk(datalog::ParseProgram(translated, &s2), "reparse");
    std::printf("output is a TC program: %s\n",
                datalog::IsTcProgram(out_prog) ? "YES" : "NO (MISMATCH!)");
  }

  // Semantic certification on random EDBs.
  testing::EquivalenceOptions opts;
  opts.trials = 10;
  opts.compare = {"sg"};
  opts.edb.domain_size = 7;
  opts.edb.fill = 0.25;
  auto report =
      CheckOk(testing::CheckEquivalent(kSg, translated, opts), "equiv");
  std::printf("equivalent on %d random EDBs: %s %s\n\n", report.trials_run,
              report.equivalent ? "YES" : "NO —", report.detail.c_str());
}

void BM_DirectLinear(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeTree(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    auto s = CheckOk(eval::EvaluateText(kSg, &db), "eval");
    benchmark::DoNotOptimize(s.tuples_derived);
  }
}
BENCHMARK(BM_DirectLinear)->Arg(4)->Arg(6)->Arg(8);

void BM_TranslatedTc(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeTree(static_cast<int>(state.range(0)));
    std::string translated = TranslateSg(&db.symbols());
    state.ResumeTiming();
    auto s = CheckOk(eval::EvaluateText(translated, &db), "eval");
    benchmark::DoNotOptimize(s.tuples_derived);
  }
}
BENCHMARK(BM_TranslatedTc)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
