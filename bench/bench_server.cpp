// The src/server subsystem: concurrent multi-session serving.
//
// Expected shape: with 1 writer mixed into N client threads, throughput
// holds (readers run against pinned snapshots and never serialize on the
// writer), tail latency stays bounded by single-query cost, and the
// session layer adds no measurable overhead to a single-caller query
// (graphlog::Run is the attached-server wrapper; BM_RunDirectPipeline vs
// BM_RunSessionWrapper must be within noise).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "storage/io.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kTcQuery =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

/// Seeds the server with a random digraph via one committed batch.
void SeedServer(Server* server, int nodes) {
  storage::Database scratch;
  CheckOk(workload::RandomDigraph(nodes, 3 * nodes, /*seed=*/7, &scratch),
          "digraph");
  CheckOk(server->Apply(WriteBatch().Facts(storage::DumpFacts(scratch)))
              .status(),
          "seed commit");
}

struct MixResult {
  double elapsed_s = 0;
  size_t ops = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One client thread: a session looping `ops` operations — mostly reads
/// (TC over the pinned snapshot), a refresh every few rounds, and, on the
/// designated writer thread, a one-edge commit per round.
MixResult RunMixedWorkload(Server* server, int threads, int ops_per_thread) {
  std::vector<std::vector<double>> lat_us(threads);
  std::atomic<int> write_seq{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto session = CheckOk(server->OpenSession(), "open session");
      lat_us[t].reserve(ops_per_thread);
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto op0 = std::chrono::steady_clock::now();
        if (t == 0 && i % 10 == 9) {
          // The writer lane: commit one fresh edge (10% of its ops).
          int n = write_seq.fetch_add(1, std::memory_order_relaxed);
          CheckOk(session
                      ->Apply(WriteBatch().Insert(
                          "edge", {"w" + std::to_string(n),
                                   "w" + std::to_string(n + 1)}))
                      .status(),
                  "commit");
        } else {
          if (i % 5 == 4) CheckOk(session->Refresh(), "refresh");
          auto resp = CheckOk(session->Run(QueryRequest::GraphLog(kTcQuery)),
                              "read");
          benchmark::DoNotOptimize(resp.stats.result_tuples);
        }
        lat_us[t].push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - op0)
                                .count());
      }
    });
  }
  for (auto& c : clients) c.join();
  MixResult out;
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::vector<double> all;
  for (auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.ops = all.size();
  if (!all.empty()) {
    out.p50_us = all[all.size() / 2];
    out.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return out;
}

void Report() {
  bench::Banner(
      "Server/Session: concurrent mixed read/write serving",
      "N reader sessions over pinned snapshots sustain throughput while a "
      "writer commits; results stay bit-identical to quiesced runs");

  // Cross-check first: a session answer must equal a quiesced
  // single-threaded run over a copy of its snapshot.
  {
    Server server;
    SeedServer(&server, 96);
    auto session = CheckOk(server.OpenSession(), "open");
    const std::string facts = storage::DumpFacts(session->database());
    CheckOk(session->Run(QueryRequest::GraphLog(kTcQuery)).status(), "read");
    storage::Database quiesced;
    CheckOk(storage::LoadFacts(facts, &quiesced).status(), "copy");
    CheckOk(graphlog::Run(QueryRequest::GraphLog(kTcQuery), &quiesced)
                .status(),
            "quiesced");
    const size_t got = session->database().Find("t")->size();
    const size_t want = quiesced.Find("t")->size();
    if (got != want) {
      std::fprintf(stderr, "FATAL: session diverged from quiesced run\n");
      std::abort();
    }
    std::printf("  MATCH session == quiesced single-threaded run (%zu tuples)\n\n",
                got);
  }

  std::printf("  mixed workload: 90%% snapshot reads / 10%% commits on the "
              "writer lane, 40 ops per client\n");
  std::printf("  %-8s %12s %12s %12s\n", "clients", "ops/s", "p50(us)",
              "p99(us)");
  for (int threads : {1, 4, 8}) {
    Server server;
    SeedServer(&server, 96);
    MixResult r = RunMixedWorkload(&server, threads, 40);
    std::printf("  %-8d %12.0f %12.0f %12.0f\n", threads,
                static_cast<double>(r.ops) / r.elapsed_s, r.p50_us, r.p99_us);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Session-layer overhead on a single caller: the Run() wrapper (attached
// server + implicit session) against the raw pipeline. The redesign's
// acceptance bar is "within noise".

// Each iteration evaluates against a fresh database: the translation
// gensyms a helper relation per run, so reusing one database makes
// later iterations slower and biases lanes that pick different
// iteration counts. The rebuild happens outside the timed region,
// identically in both lanes.

void BM_RunDirectPipeline(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::RandomDigraph(64, 192, /*seed=*/7, &db), "digraph");
    state.ResumeTiming();
    auto r = CheckOk(
        detail::RunPipeline(QueryRequest::GraphLog(kTcQuery), &db), "eval");
    benchmark::DoNotOptimize(r.stats.result_tuples);
  }
}
BENCHMARK(BM_RunDirectPipeline);

void BM_RunSessionWrapper(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::RandomDigraph(64, 192, /*seed=*/7, &db), "digraph");
    state.ResumeTiming();
    auto r = CheckOk(graphlog::Run(QueryRequest::GraphLog(kTcQuery), &db),
                     "eval");
    benchmark::DoNotOptimize(r.stats.result_tuples);
  }
}
BENCHMARK(BM_RunSessionWrapper);

// ---------------------------------------------------------------------------
// Mixed-workload throughput across client-thread counts (the serving
// claim; items processed = client operations).

void BM_ServerMixedWorkload(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Server server;
    SeedServer(&server, 64);
    state.ResumeTiming();
    MixResult r = RunMixedWorkload(&server, threads, 20);
    state.counters["p99_us"] = r.p99_us;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.ops));
  }
}
BENCHMARK(BM_ServerMixedWorkload)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Snapshot mechanics: session open (materialization) and commit
// (publish) cost against database size.

void BM_SessionOpen(benchmark::State& state) {
  Server server;
  SeedServer(&server, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto session = CheckOk(server.OpenSession(), "open");
    benchmark::DoNotOptimize(session->epoch());
  }
}
BENCHMARK(BM_SessionOpen)->Arg(64)->Arg(256);

void BM_CommitPublish(benchmark::State& state) {
  Server server;
  SeedServer(&server, static_cast<int>(state.range(0)));
  int n = 0;
  for (auto _ : state) {
    CheckOk(server
                .Apply(WriteBatch().Insert(
                    "edge",
                    {"c" + std::to_string(n), "c" + std::to_string(n + 1)}))
                .status(),
            "commit");
    ++n;
  }
}
BENCHMARK(BM_CommitPublish)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Report();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
