// Figures 2 & 3: the descendants query.
//
// Prints the query graph and its lambda translation (which must be the
// Figure 3 program), certifies that the GraphLog evaluation matches the
// hand-written Figure 3 Datalog on generated family forests, and times
// both paths as the family grows — the translation overhead must be noise.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kFig2Query =
    "query not-desc-of {\n"
    "  node P2 [person];\n"
    "  edge P1 -> P3 : descendant+;\n"
    "  edge P2 -> P3 : !descendant+;\n"
    "  distinguished P1 -> P3 : not-desc-of(P2);\n"
    "}\n";

// Figure 3, hand-written.
const char* kFig3Program =
    "not-desc-of(P1, P3, P2) :- descendant-tc(P1, P3),\n"
    "                           !descendant-tc(P2, P3), person(P2).\n"
    "descendant-tc(X, Y) :- descendant(X, Y).\n"
    "descendant-tc(X, Y) :- descendant(X, Z), descendant-tc(Z, Y).\n";

storage::Database MakeFamily(int generations) {
  storage::Database db;
  workload::FamilyOptions opts;
  opts.generations = generations;
  opts.roots = 2;
  opts.children_min = 1;
  opts.children_max = 2;
  CheckOk(workload::Family(opts, &db), "family generator");
  return db;
}

void Report() {
  bench::Banner("Figures 2 & 3 — descendants of P1 not descendants of P2",
                "lambda(query graph of Fig. 2) == the Datalog program of "
                "Fig. 3, and both compute the same relation");
  storage::Database db = MakeFamily(5);
  std::printf("query graph:\n%s\n", kFig2Query);

  auto q = CheckOk(gl::ParseGraphicalQuery(kFig2Query, &db.symbols()),
                   "parse");
  auto t = CheckOk(gl::Translate(q, &db.symbols()), "translate");
  std::printf("lambda translation:\n%s\n",
              t.program.ToString(db.symbols()).c_str());

  // Evaluate via GraphLog and via the hand-written Figure 3 program on
  // separate copies, then diff.
  storage::Database db1 = MakeFamily(5);
  storage::Database db2 = MakeFamily(5);
  CheckOk(bench::EvalGraphLogText(kFig2Query, &db1).status(), "graphlog");
  CheckOk(eval::EvaluateText(kFig3Program, &db2).status(), "figure 3");
  std::string a = db1.RelationToString(db1.Intern("not-desc-of"));
  std::string b = db2.RelationToString(db2.Intern("not-desc-of"));
  std::printf("GraphLog result == hand-written Figure 3 result: %s "
              "(%zu facts)\n\n",
              a == b ? "YES" : "NO (MISMATCH!)",
              db1.Find("not-desc-of")->size());
}

void BM_GraphLogFig2(benchmark::State& state) {
  int generations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeFamily(generations);
    state.ResumeTiming();
    auto stats = CheckOk(bench::EvalGraphLogText(kFig2Query, &db), "eval");
    benchmark::DoNotOptimize(stats.result_tuples);
  }
}
BENCHMARK(BM_GraphLogFig2)->Arg(4)->Arg(6)->Arg(8);

void BM_HandDatalogFig3(benchmark::State& state) {
  int generations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeFamily(generations);
    state.ResumeTiming();
    auto stats = CheckOk(eval::EvaluateText(kFig3Program, &db), "eval");
    benchmark::DoNotOptimize(stats.tuples_derived);
  }
}
BENCHMARK(BM_HandDatalogFig3)->Arg(4)->Arg(6)->Arg(8);

void BM_TranslationOnly(benchmark::State& state) {
  storage::Database db;
  auto q = CheckOk(gl::ParseGraphicalQuery(kFig2Query, &db.symbols()),
                   "parse");
  for (auto _ : state) {
    auto t = CheckOk(gl::Translate(q, &db.symbols()), "translate");
    benchmark::DoNotOptimize(t.program.size());
  }
}
BENCHMARK(BM_TranslationOnly);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
