// Profiling-overhead ablation for EXPLAIN ANALYZE (obs/profile.h).
//
// The same queries evaluated through graphlog::Run with profiling off
// (the default: one null-pointer test per instrumentation site) and on
// (per-step counters accumulated per partition and folded at merge
// time). The off-vs-baseline delta is the acceptance gate — profiling
// must cost nothing while disabled; the enabled delta is the price of a
// full plan-level profile.
//
//  * BM_GraphLogQuery/profile:    the Figure 4 two-graph query over the
//    Figure 1 flights — short rules, translation-dominated.
//  * BM_DatalogLinearTc/profile:  linear TC on a random digraph — many
//    fixpoint rounds, the per-round/per-step counter hot path.
//  * BM_DatalogLinearTc/threads:  profiled parallel evaluation — the
//    merge-time fold is per (task, partition), not per tuple.
//  * BM_StatsRefresh: RelationStats incremental refresh after appending
//    a row suffix vs recomputing from scratch.

#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "storage/relation_stats.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

constexpr char kFigure4Query[] =
    "query feasible {\n"
    "  edge F1 -> A1 : arrival;\n"
    "  edge F2 -> D2 : departure;\n"
    "  edge A1 -> D2 : <;\n"
    "  edge F1 -> C : to;\n"
    "  edge F2 -> C : from;\n"
    "  distinguished F1 -> F2 : feasible;\n"
    "}\n"
    "query stop-connected {\n"
    "  edge C1 -> C2 : (-from) feasible+ to;\n"
    "  distinguished C1 -> C2 : stop-connected;\n"
    "}\n";

constexpr char kLinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

void BM_GraphLogQuery(benchmark::State& state) {
  const bool profile = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::Figure1Flights(&db), "figure 1 flights");
    QueryRequest req = QueryRequest::GraphLog(kFigure4Query);
    req.options.observability.profile = profile;
    state.ResumeTiming();
    auto r = Run(req, &db);
    CheckOk(r.status(), "figure 4 query");
    benchmark::DoNotOptimize(r->profile);
  }
}
BENCHMARK(BM_GraphLogQuery)
    ->Args({0})
    ->Args({1})
    ->ArgNames({"profile"})
    ->Unit(benchmark::kMicrosecond);

void BM_DatalogLinearTc(benchmark::State& state) {
  const bool profile = state.range(0) != 0;
  const unsigned threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db;
    CheckOk(workload::RandomDigraph(300, 1200, 42, &db), "random digraph");
    QueryRequest req = QueryRequest::Datalog(kLinearTc);
    req.options.observability.profile = profile;
    req.options.eval.num_threads = threads;
    state.ResumeTiming();
    auto r = Run(req, &db);
    CheckOk(r.status(), "datalog tc");
    benchmark::DoNotOptimize(r->stats.datalog.tuples_derived);
  }
}
BENCHMARK(BM_DatalogLinearTc)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->ArgNames({"profile", "threads"})
    ->Unit(benchmark::kMillisecond);

/// Incremental stats maintenance: refresh after appending `suffix` rows
/// to a relation of `base` rows. The grow-only path absorbs just the
/// suffix; a full recompute would rescan all base + suffix rows.
void BM_StatsRefresh(benchmark::State& state) {
  const int base = static_cast<int>(state.range(0));
  const int suffix = static_cast<int>(state.range(1));
  // Teardown of the previous iteration's database happens inside the
  // next paused section — only the refresh itself is timed.
  std::optional<storage::Database> db;
  for (auto _ : state) {
    state.PauseTiming();
    db.emplace();
    CheckOk(workload::RandomDigraph(base / 4, base, 7, &*db), "digraph");
    // Prime the catalog so the timed refresh starts from current stats.
    benchmark::DoNotOptimize(db->StatsFor("edge"));
    storage::Relation* rel = db->FindMutable(db->symbols().Lookup("edge"));
    for (int i = 0; i < suffix; ++i) {
      rel->Insert({Value::Int(1000000 + i), Value::Int(2000000 + i)});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(db->StatsFor("edge"));
  }
}
BENCHMARK(BM_StatsRefresh)
    ->Args({10000, 100})
    ->Args({10000, 10000})
    ->ArgNames({"base", "suffix"})
    ->Unit(benchmark::kMicrosecond);

void Report() {
  bench::Banner(
      "Profiling overhead ablation",
      "EXPLAIN ANALYZE off (default null-profile path) vs on, same "
      "queries; the off-vs-baseline delta is the zero-overhead claim");

  // Sanity: a profiled run records the expected artifacts, and the
  // logical export is deterministic.
  storage::Database db;
  CheckOk(workload::RandomDigraph(100, 400, 42, &db), "random digraph");
  QueryRequest req = QueryRequest::Datalog(kLinearTc);
  req.options.observability.profile = true;
  auto r = Run(req, &db);
  CheckOk(r.status(), "profiled tc");
  uint64_t probes = 0;
  for (const auto& rule : r->profile.rules) {
    for (const auto& s : rule.steps) probes += s.invocations;
  }
  std::printf("profiled run: %zu rules, %zu rounds, %llu probes, "
              "deterministic export %zu bytes\n",
              r->profile.rules.size(), r->profile.rounds.size(),
              static_cast<unsigned long long>(probes),
              r->profile.ToJson(/*include_timings=*/false).size());
}

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
