// Figure 12: the prototype's RT-scale query, two evaluation strategies.
//
// "Define a loop labelled RT-scale going from a city back to itself if the
// city is a scale on a sequence of Canadian Pacific flights from Rome to
// Tokyo." Evaluated two ways:
//
//   1. GraphLog/Datalog: lambda translation materializes the full cp-tc
//      closure, then filters by the Rome/Tokyo constants.
//   2. RPQ product search ([MW89], what the Section 5 prototype does for
//      edge queries): BFS from Rome through the automaton product.
//
// Expected shape: the strategies agree exactly, and the fixed-endpoint
// product search wins by a growing factor as the airline network grows,
// because it never materializes the all-pairs closure.

#include <benchmark/benchmark.h>

#include <set>
#include <string>

#include "bench/bench_util.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kGraphLogQuery =
    "query rt-scale {\n"
    "  edge \"city0\" -> C : al0+;\n"
    "  edge C -> \"city1\" : al0+;\n"
    "  distinguished C -> C : rt-scale;\n"
    "}\n";

storage::Database MakeAirlineNetwork(int flights) {
  storage::Database db;
  workload::FlightsOptions opts;
  opts.num_flights = flights;
  opts.num_cities = std::max(6, flights / 12);
  opts.num_airlines = 3;
  CheckOk(workload::Flights(opts, &db), "flights generator");
  return db;
}

std::set<std::string> ScalesViaDatalog(storage::Database* db,
                                       bool magic = false) {
  auto q = CheckOk(
      gl::ParseGraphicalQuery(kGraphLogQuery, &db->symbols()), "parse");
  QueryRequest req = QueryRequest::Graphical(q);
  req.options.translation.specialize_bound_closures = magic;
  CheckOk(Run(req, db).status(), "graphlog");
  std::set<std::string> out;
  const storage::Relation* rel = db->Find("rt-scale");
  if (rel == nullptr) return out;
  for (const auto& t : rel->rows()) {
    out.insert(t[0].ToString(db->symbols()));
  }
  return out;
}

std::set<std::string> ScalesViaRpq(storage::Database* db,
                                   rpq::RpqStats* stats = nullptr) {
  graph::DataGraph g = graph::DataGraph::FromDatabase(*db);
  // Scales = nodes on an al0-path: reachable from city0 AND reaching
  // city1, via two fixed-endpoint RPQs.
  rpq::RpqOptions from_rome;
  from_rome.source = Value::Sym(db->Intern("city0"));
  auto fwd = CheckOk(
      rpq::EvalRpqText(g, "al0+", &db->symbols(), from_rome, stats), "rpq");
  rpq::RpqOptions to_tokyo;
  to_tokyo.source = Value::Sym(db->Intern("city1"));
  // Reaching city1 forwards == reachable from city1 along inverted edges.
  auto bwd = CheckOk(rpq::EvalRpqText(g, "(-al0)+", &db->symbols(),
                                      to_tokyo, stats),
                     "rpq inverse");
  std::set<std::string> reach_fwd, out;
  for (const auto& t : fwd.rows()) {
    reach_fwd.insert(t[1].ToString(db->symbols()));
  }
  for (const auto& t : bwd.rows()) {
    std::string c = t[1].ToString(db->symbols());
    if (reach_fwd.count(c)) out.insert(c);
  }
  return out;
}

void Report() {
  bench::Banner("Figure 12 — the prototype's RT-scale query",
                "automaton-product search ([MW89]) and the Datalog "
                "translation agree; fixed endpoints favor the product "
                "search");
  for (int flights : {120, 240}) {
    storage::Database db1 = MakeAirlineNetwork(flights);
    storage::Database db2 = MakeAirlineNetwork(flights);
    storage::Database db3 = MakeAirlineNetwork(flights);
    auto a = ScalesViaDatalog(&db1);
    auto b = ScalesViaRpq(&db2);
    auto c = ScalesViaDatalog(&db3, /*magic=*/true);
    std::printf(
        "flights=%4d  scales(datalog)=%zu  scales(rpq)=%zu  "
        "scales(magic-tc)=%zu  %s\n",
        flights, a.size(), b.size(), c.size(),
        (a == b && a == c) ? "(MATCH)" : "(MISMATCH!)");
  }
  std::printf("\n");
}

void BM_DatalogStrategy(benchmark::State& state) {
  int flights = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeAirlineNetwork(flights);
    state.ResumeTiming();
    auto scales = ScalesViaDatalog(&db);
    benchmark::DoNotOptimize(scales.size());
  }
}
BENCHMARK(BM_DatalogStrategy)->Arg(60)->Arg(120)->Arg(240)->Arg(480);

void BM_RpqProductStrategy(benchmark::State& state) {
  int flights = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeAirlineNetwork(flights);
    state.ResumeTiming();
    auto scales = ScalesViaRpq(&db);
    benchmark::DoNotOptimize(scales.size());
  }
}
BENCHMARK(BM_RpqProductStrategy)->Arg(60)->Arg(120)->Arg(240)->Arg(480);

void BM_MagicTcStrategy(benchmark::State& state) {
  int flights = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeAirlineNetwork(flights);
    state.ResumeTiming();
    auto scales = ScalesViaDatalog(&db, /*magic=*/true);
    benchmark::DoNotOptimize(scales.size());
  }
}
BENCHMARK(BM_MagicTcStrategy)->Arg(60)->Arg(120)->Arg(240)->Arg(480);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
