// The src/net subsystem: framed TCP serving on loopback.
//
// Expected shape: the wire adds a fixed per-request cost (frame
// encode/decode + CRC + a loopback round trip) on top of in-process
// session serving — compare BM_NetQueryRoundTrip here against
// bench_server's BM_RunSessionWrapper. Throughput scales with client
// count until the engine saturates, tail latency stays bounded, and
// under admission pressure the server sheds deterministically with
// kOverloaded instead of queueing without bound.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "net/client.h"
#include "net/net_server.h"
#include "storage/database.h"
#include "storage/io.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kTcQuery =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

net::WireQuery TcWireQuery() {
  net::WireQuery q;
  q.text = kTcQuery;
  return q;
}

/// Seeds the server with a random digraph via one committed batch.
void SeedServer(Server* server, int nodes) {
  storage::Database scratch;
  CheckOk(workload::RandomDigraph(nodes, 3 * nodes, /*seed=*/7, &scratch),
          "digraph");
  CheckOk(server->Apply(WriteBatch().Facts(storage::DumpFacts(scratch)))
              .status(),
          "seed commit");
}

/// A served engine plus a connected client, set up outside any timed
/// region.
struct Loopback {
  Server server;
  std::unique_ptr<net::NetServer> net;
  std::unique_ptr<net::Client> client;

  explicit Loopback(int nodes, net::NetServerOptions opts = {}) {
    SeedServer(&server, nodes);
    net = CheckOk(net::NetServer::Start(&server, opts), "serve");
    client = CheckOk(net::Client::Connect("127.0.0.1", net->port()),
                     "connect");
    CheckOk(client->OpenSession().status(), "open session");
  }
};

struct MixResult {
  double elapsed_s = 0;
  size_t ops = 0;
  size_t shed = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// N TCP clients, each its own connection + session: 90% remote TC
/// queries, 10% one-edge commits on the designated writer client.
/// kOverloaded responses count as shed, not as failures.
MixResult RunMixedClients(uint16_t port, int threads, int ops_per_thread) {
  std::vector<std::vector<double>> lat_us(threads);
  std::atomic<int> write_seq{0};
  std::atomic<size_t> shed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto client =
          CheckOk(net::Client::Connect("127.0.0.1", port), "connect");
      CheckOk(client->OpenSession().status(), "open session");
      lat_us[t].reserve(ops_per_thread);
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto op0 = std::chrono::steady_clock::now();
        if (t == 0 && i % 10 == 9) {
          int n = write_seq.fetch_add(1, std::memory_order_relaxed);
          const Status st =
              client
                  ->Apply(WriteBatch().Insert(
                      "edge", {"w" + std::to_string(n),
                               "w" + std::to_string(n + 1)}))
                  .status();
          if (!st.ok()) {
            if (st.code() != StatusCode::kOverloaded) {
              CheckOk(st, "remote commit");
            }
            shed.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (i % 5 == 4) CheckOk(client->Refresh().status(), "refresh");
          auto resp = client->Run(TcWireQuery());
          if (!resp.ok()) {
            if (resp.status().code() != StatusCode::kOverloaded) {
              CheckOk(resp.status(), "remote read");
            }
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            benchmark::DoNotOptimize(resp->result_tuples);
          }
        }
        lat_us[t].push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - op0)
                                .count());
      }
    });
  }
  for (auto& c : clients) c.join();
  MixResult out;
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  out.shed = shed.load();
  std::vector<double> all;
  for (auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.ops = all.size();
  if (!all.empty()) {
    out.p50_us = all[all.size() / 2];
    out.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return out;
}

void Report() {
  bench::Banner(
      "Network front end: loopback TCP serving vs in-process sessions",
      "remote answers are bit-identical to in-process ones; the wire adds "
      "a fixed per-request cost; overload sheds deterministically");

  // Cross-check first: the relation a remote query materializes must be
  // byte-identical to the one an in-process session materializes for the
  // same query over the same snapshot.
  {
    Loopback lb(96);
    CheckOk(lb.client->Run(TcWireQuery()).status(), "remote read");
    const std::string remote =
        CheckOk(lb.client->FetchRelation("t"), "fetch");
    auto session = CheckOk(lb.server.OpenSession(), "open local");
    CheckOk(session->Run(QueryRequest::GraphLog(kTcQuery)).status(),
            "local read");
    const std::string local = session->database().RelationToString(
        session->database().symbols().Lookup("t"));
    if (remote != local) {
      std::fprintf(stderr, "FATAL: remote result diverged from in-process\n");
      std::abort();
    }
    std::printf("  MATCH remote == in-process session (%zu bytes of "
                "relation text)\n\n",
                remote.size());
  }

  // Loopback latency/throughput by client count (compare the same table
  // in bench_server for the in-process ceiling).
  std::printf("  loopback mixed workload: 90%% remote reads / 10%% remote "
              "commits on the writer client, 40 ops per client\n");
  std::printf("  %-8s %12s %12s %12s\n", "clients", "ops/s", "p50(us)",
              "p99(us)");
  for (int threads : {1, 4, 8, 16}) {
    Loopback lb(96, {.max_connections = 64});
    MixResult r = RunMixedClients(lb.net->port(), threads, 40);
    std::printf("  %-8d %12.0f %12.0f %12.0f\n", threads,
                static_cast<double>(r.ops) / r.elapsed_s, r.p50_us, r.p99_us);
  }
  std::printf("\n");

  // Overload lane: with one query slot, concurrent clients are shed with
  // kOverloaded + retry advice instead of queueing; every op terminates.
  {
    net::NetServerOptions opts;
    opts.max_inflight_queries = 1;
    opts.retry_after_ms = 5;
    Loopback lb(96, opts);
    MixResult r = RunMixedClients(lb.net->port(), 8, 20);
    std::printf("  overload lane (max_inflight_queries=1, 8 clients): "
                "%zu served, %zu shed with kOverloaded, %zu rejected "
                "total at the server\n\n",
                r.ops - r.shed, r.shed, lb.net->rejected());
  }
}

// ---------------------------------------------------------------------------
// Per-request wire overhead: the cheapest possible round trip (a ping is
// pure framing + loopback), then a real remote query and a remote commit.

void BM_NetPing(benchmark::State& state) {
  Loopback lb(64);
  // A single loopback ping is a handful of microseconds — far inside
  // scheduler jitter on a loaded box. Batch a round of them per
  // iteration so the timed unit is stable enough for regression checks.
  constexpr int kPingsPerIteration = 128;
  for (auto _ : state) {
    for (int i = 0; i < kPingsPerIteration; ++i) {
      CheckOk(lb.client->Ping(), "ping");
    }
  }
  state.SetItemsProcessed(state.iterations() * kPingsPerIteration);
}
BENCHMARK(BM_NetPing);

void BM_NetQueryRoundTrip(benchmark::State& state) {
  Loopback lb(64);
  for (auto _ : state) {
    auto r = CheckOk(lb.client->Run(TcWireQuery()), "remote read");
    benchmark::DoNotOptimize(r.result_tuples);
  }
}
BENCHMARK(BM_NetQueryRoundTrip);

void BM_NetApply(benchmark::State& state) {
  Loopback lb(64);
  int n = 0;
  for (auto _ : state) {
    CheckOk(lb.client
                ->Apply(WriteBatch().Insert(
                    "edge",
                    {"c" + std::to_string(n), "c" + std::to_string(n + 1)}))
                .status(),
            "remote commit");
    ++n;
  }
}
BENCHMARK(BM_NetApply);

// ---------------------------------------------------------------------------
// Loopback mixed-workload throughput across client counts (items
// processed = client operations; compare BM_ServerMixedWorkload).

void BM_NetMixedWorkload(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto lb = std::make_unique<Loopback>(64, net::NetServerOptions{
                                                 .max_connections = 64});
    state.ResumeTiming();
    MixResult r = RunMixedClients(lb->net->port(), threads, 20);
    state.counters["p99_us"] = r.p99_us;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.ops));
    state.PauseTiming();
    lb.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_NetMixedWorkload)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Report();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
