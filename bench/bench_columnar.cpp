// Columnar ablation: row-at-a-time vs CSR/bitset evaluation.
//
// The columnar layer (src/columnar/) is a pure constant-factor
// optimisation — same rows, same provenance, same stats — so the claim
// this bench reproduces is quantitative: serving probes from CSR
// adjacency spans and running closures/product searches over word-packed
// bitset frontiers beats the hash-index row path by >= 2x on the
// workloads the other benches already time:
//
//   tc       — per-source-parallel transitive closure on RandomDigraph
//              (bench_parallel_tc's graph), row kernel vs the CSR/bitset
//              kernel (tc/columnar_tc.h);
//   engine   — the linear-closure GraphLog program on bench_scaling's
//              graph, the semi-naive engine with eval.columnar off vs on
//              (CSR build cost included: the engine snapshots EDBs per
//              batch);
//   rpq      — the redundant-union expression from bench_rpq_ablation,
//              DFA product search vs the per-state bitset-frontier
//              kernel (rpq::EvalRpqBitset).
//
// The Report() section cross-checks equivalence and prints median
// speedups at the largest size; the google-benchmark timings show the
// shape across sizes.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "columnar/csr_cache.h"
#include "eval/engine.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tc/columnar_tc.h"
#include "tc/parallel_tc.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

// The three graphs mirror the benches whose workloads this ablation
// re-times, seeds included.
storage::Database MakeTcGraph(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 4 * n, 123, &db), "tc graph");
  return db;
}

storage::Database MakeScalingGraph(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 3 * n, 7, &db), "scaling graph");
  return db;
}

storage::Database MakeRpqGraph(int n) {
  storage::Database db;
  CheckOk(workload::RandomDigraph(n, 3 * n, 4, &db, "p"), "gen p");
  CheckOk(workload::RandomDigraph(n, 2 * n, 13, &db, "q"), "gen q");
  return db;
}

const char* kClosureProgram =
    "t(X, Y) :- edge(X, Y).\n"
    "t(X, Y) :- edge(X, Z), t(Z, Y).\n";
const char* kRpqExpr = "(p | p p | p p p)+";

double MedianMs(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

template <typename F>
double TimeMs(F&& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void Report() {
  bench::Banner(
      "Columnar ablation — CSR/bitset kernels vs the row path",
      "identical answers; >= 2x median speedup from CSR adjacency "
      "spans and word-packed bitset frontiers");
  constexpr int kReps = 5;

  // tc: row kernel vs columnar kernel, largest bench_parallel_tc size.
  {
    const int n = 400;
    storage::Database db = MakeTcGraph(n);
    const storage::Relation& e = *db.Find("edge");
    columnar::CsrCache cache;
    storage::Relation row_tc(2), col_tc(2);
    std::vector<double> row_ms, col_ms;
    for (int i = 0; i < kReps; ++i) {
      row_ms.push_back(TimeMs([&] {
        row_tc = CheckOk(tc::ParallelTransitiveClosure(e, 1), "row tc");
      }));
      col_ms.push_back(TimeMs([&] {
        col_tc = CheckOk(
            tc::ColumnarTransitiveClosure(e, 1, nullptr, nullptr, nullptr,
                                          &cache),
            "columnar tc");
      }));
    }
    double row = MedianMs(row_ms), col = MedianMs(col_ms);
    std::printf(
        "tc      n=%-4d row %8.2f ms | columnar %8.2f ms | %5.2fx  %s\n", n,
        row, col, row / col,
        row_tc.SetEquals(col_tc) ? "(MATCH)" : "(MISMATCH!)");
  }

  // engine: eval.columnar off vs on on the linear-closure program,
  // largest bench_scaling size. Fresh database per run (the program
  // materializes t), timing only the evaluation.
  {
    const int n = 256;
    std::vector<double> row_ms, col_ms;
    eval::EvalStats row_stats, col_stats;
    for (int i = 0; i < kReps; ++i) {
      storage::Database row_db = MakeScalingGraph(n);
      row_ms.push_back(TimeMs([&] {
        row_stats =
            CheckOk(eval::EvaluateText(kClosureProgram, &row_db), "row eval");
      }));
      storage::Database col_db = MakeScalingGraph(n);
      eval::EvalOptions opts;
      opts.columnar = true;
      col_ms.push_back(TimeMs([&] {
        col_stats = CheckOk(eval::EvaluateText(kClosureProgram, &col_db, opts),
                            "columnar eval");
      }));
      if (i == 0) {
        bool match = row_db.Find("t")->rows() == col_db.Find("t")->rows() &&
                     row_stats.rule_firings == col_stats.rule_firings &&
                     row_stats.tuples_derived == col_stats.tuples_derived;
        if (!match) std::printf("engine paths DIVERGED (bug!)\n");
      }
    }
    double row = MedianMs(row_ms), col = MedianMs(col_ms);
    std::printf(
        "engine  n=%-4d row %8.2f ms | columnar %8.2f ms | %5.2fx  "
        "(bit-identical rows + stats checked)\n",
        n, row, col, row / col);
  }

  // rpq: DFA product search vs bitset frontiers on the redundant-union
  // expression, largest bench_rpq_ablation size.
  {
    const int n = 60;
    storage::Database db = MakeRpqGraph(n);
    graph::DataGraph g = graph::DataGraph::FromDatabase(db);
    auto expr = CheckOk(gl::ParsePathExpr(kRpqExpr, &db.symbols()), "parse");
    storage::Relation dfa_r(2), bit_r(2);
    std::vector<double> row_ms, col_ms;
    for (int i = 0; i < kReps; ++i) {
      row_ms.push_back(TimeMs([&] {
        dfa_r = CheckOk(rpq::EvalRpqDfa(g, expr), "dfa eval");
      }));
      col_ms.push_back(TimeMs([&] {
        bit_r = CheckOk(rpq::EvalRpqBitset(g, expr), "bitset eval");
      }));
    }
    double row = MedianMs(row_ms), col = MedianMs(col_ms);
    std::printf(
        "rpq     n=%-4d row %8.2f ms | columnar %8.2f ms | %5.2fx  %s\n", n,
        row, col, row / col,
        dfa_r.SetEquals(bit_r) ? "(MATCH)" : "(MISMATCH!)");
  }
  std::printf("\n");
}

// --- timed benchmarks: strategy 0 = row path, 1 = columnar path ---

void BM_Tc(benchmark::State& state) {
  int strategy = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  storage::Database db = MakeTcGraph(n);
  const storage::Relation& e = *db.Find("edge");
  columnar::CsrCache cache;
  for (auto _ : state) {
    auto tc = strategy == 0
                  ? CheckOk(tc::ParallelTransitiveClosure(e, 1), "row tc")
                  : CheckOk(tc::ColumnarTransitiveClosure(
                                e, 1, nullptr, nullptr, nullptr, &cache),
                            "columnar tc");
    benchmark::DoNotOptimize(tc.size());
  }
  state.SetLabel(std::string(strategy == 0 ? "row" : "columnar") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_Tc)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({0, 200})
    ->Args({1, 200})
    ->Args({0, 400})
    ->Args({1, 400})
    ->UseRealTime();

void BM_EngineClosure(benchmark::State& state) {
  int strategy = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  eval::EvalOptions opts;
  opts.columnar = strategy == 1;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeScalingGraph(n);
    state.ResumeTiming();
    auto s = CheckOk(eval::EvaluateText(kClosureProgram, &db, opts), "eval");
    benchmark::DoNotOptimize(s.tuples_derived);
  }
  state.SetLabel(std::string(strategy == 0 ? "row" : "columnar") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_EngineClosure)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({0, 256})
    ->Args({1, 256})
    ->UseRealTime();

void BM_Rpq(benchmark::State& state) {
  int strategy = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  storage::Database db = MakeRpqGraph(n);
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  auto expr = CheckOk(gl::ParsePathExpr(kRpqExpr, &db.symbols()), "parse");
  for (auto _ : state) {
    auto r = strategy == 0 ? CheckOk(rpq::EvalRpqDfa(g, expr), "dfa")
                           : CheckOk(rpq::EvalRpqBitset(g, expr), "bitset");
    benchmark::DoNotOptimize(r.size());
  }
  state.SetLabel(std::string(strategy == 0 ? "dfa" : "bitset") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_Rpq)
    ->Args({0, 20})
    ->Args({1, 20})
    ->Args({0, 40})
    ->Args({1, 40})
    ->Args({0, 60})
    ->Args({1, 60})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
