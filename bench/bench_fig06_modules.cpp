// Figure 6: circularly used modules invoking the async-io library.
//
// Runs the three-graph module-audit query on generated call graphs of
// increasing size. The interesting shape: cost is dominated by the
// module-level closure, which is quadratic in modules, not in functions.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

const char* kQuery =
    "query module-calls {\n"
    "  edge M1 -> M2 : -(in-module) (calls-local)* calls-extn in-module;\n"
    "  distinguished M1 -> M2 : module-calls;\n"
    "}\n"
    "query uses-async {\n"
    "  edge M -> F : -(in-module) (calls-local | calls-extn)+;\n"
    "  edge F -> \"lib0\" : in-library;\n"
    "  distinguished M -> M : uses-async;\n"
    "}\n"
    "query self-used {\n"
    "  edge M -> M : module-calls+;\n"
    "  edge M -> M : uses-async;\n"
    "  distinguished M -> M : self-used;\n"
    "}\n";

storage::Database MakeModules(int modules) {
  storage::Database db;
  workload::ModulesOptions opts;
  opts.num_modules = modules;
  CheckOk(workload::Modules(opts, &db), "modules generator");
  return db;
}

void Report() {
  bench::Banner("Figure 6 — circular modules using async-io",
                "inverse membership + local-call closure + external call "
                "compose into a module-level dependency closure");
  for (int modules : {6, 12, 24}) {
    storage::Database db = MakeModules(modules);
    auto stats = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
    std::printf("modules=%3d  module-calls=%4zu  self-used=%3zu  "
                "(firings=%llu)\n",
                modules, db.Find("module-calls")->size(),
                db.Find("self-used")->size(),
                static_cast<unsigned long long>(stats.datalog.rule_firings));
  }
  std::printf("\n");
}

void BM_Figure6(benchmark::State& state) {
  int modules = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeModules(modules);
    state.ResumeTiming();
    auto s = CheckOk(bench::EvalGraphLogText(kQuery, &db), "eval");
    benchmark::DoNotOptimize(s.result_tuples);
  }
  state.SetComplexityN(modules);
}
BENCHMARK(BM_Figure6)->Arg(6)->Arg(12)->Arg(24)->Arg(48)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
