// Join-ordering ablation: cardinality-aware vs syntactic literal order.
//
// For a one-shot rule the lazily-built hash index costs as much as one
// scan, so ordering barely matters. The payoff is in *recursive* rules:
// each semi-naive round re-executes the plan, and a plan that scans the
// big EDB every round (because the body happens to mention it first) pays
// |big| per round, while the cost-based plan scans the small delta and
// probes the big relation's index, which is built once and reused.
//
//   r(Y) :- big(X, Y), r(X).        <- adversarial body order
//
// Expected shape: costed ~ O(|big| + closure), syntactic ~
// O(rounds x |big|); the gap grows with the recursion depth.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/engine.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

/// A long chain (deep recursion) embedded in a large random edge soup.
storage::Database MakeDeepAndWide(int chain, int noise) {
  storage::Database db;
  CheckOk(workload::Chain(chain, &db, "big"), "chain");
  // Noise edges among high-numbered nodes; they do not shorten the chain.
  CheckOk(workload::RandomDigraph(noise / 3, noise, 9, &db, "noise"),
          "noise");
  // Merge noise into big so `big` is large.
  const storage::Relation* noise_rel = db.Find("noise");
  std::vector<storage::Tuple> rows = noise_rel->rows();
  for (auto& t : rows) {
    // Remap noise node names so they do not touch the chain.
    CheckOk(db.AddFact(
                "big",
                {Value::Sym(db.Intern(
                     "x" + t[0].ToString(db.symbols()))),
                 Value::Sym(db.Intern("x" + t[1].ToString(db.symbols())))}),
            "merge");
  }
  CheckOk(db.AddSymFact("seed", {"n0"}), "seed");
  return db;
}

const char* kAdversarialProgram =
    "r(X) :- seed(X).\n"
    "r(Y) :- big(X, Y), r(X).\n";  // big mentioned first

void Report() {
  bench::Banner(
      "Join-order ablation — cardinality-aware compilation",
      "recursive rules amortize the big relation's index across rounds; "
      "the syntactic order rescans it every round");
  for (int chain : {200, 400}) {
    storage::Database db1 = MakeDeepAndWide(chain, 30000);
    storage::Database db2 = MakeDeepAndWide(chain, 30000);
    eval::EvalOptions syntactic;
    syntactic.cardinality_join_ordering = false;
    eval::EvalOptions costed;
    costed.cardinality_join_ordering = true;
    auto s1 = CheckOk(
        eval::EvaluateText(kAdversarialProgram, &db1, syntactic),
        "syntactic");
    auto s2 = CheckOk(eval::EvaluateText(kAdversarialProgram, &db2, costed),
                      "costed");
    std::printf(
        "chain=%4d  |r|: %zu vs %zu %s   firings: syntactic=%llu "
        "costed=%llu\n",
        chain, db1.Find("r")->size(), db2.Find("r")->size(),
        db1.Find("r")->SetEquals(*db2.Find("r")) ? "(MATCH)"
                                                 : "(MISMATCH!)",
        static_cast<unsigned long long>(s1.rule_firings),
        static_cast<unsigned long long>(s2.rule_firings));
  }
  std::printf("\n");
}

void BM_JoinOrder(benchmark::State& state) {
  bool costed = state.range(0) == 1;
  int chain = static_cast<int>(state.range(1));
  eval::EvalOptions opts;
  opts.cardinality_join_ordering = costed;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeDeepAndWide(chain, 30000);
    state.ResumeTiming();
    auto s = CheckOk(eval::EvaluateText(kAdversarialProgram, &db, opts),
                     "eval");
    benchmark::DoNotOptimize(s.tuples_derived);
  }
  state.SetLabel(costed ? "costed" : "syntactic");
}
BENCHMARK(BM_JoinOrder)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({0, 400})
    ->Args({1, 400});

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
