// The src/durability subsystem: write-ahead logging, checkpoints, and
// crash recovery.
//
// Expected shape: commit throughput orders off >= group >= always (the
// fsync dominates a tiny commit); recovery time grows linearly with the
// number of WAL records and collapses after a checkpoint truncates the
// log behind itself; recovered state is fingerprint-identical to the
// live server that wrote it (the MATCH cross-check).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "durability/wal.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "testing/crash_sweep.h"

using namespace graphlog;
using bench::CheckOk;
using durability::FsyncPolicy;

namespace {

/// A fresh empty directory under the system temp root; never reused.
std::string FreshDir(const char* tag) {
  static std::atomic<uint64_t> seq{0};
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("graphlog_bench_dur_" + std::to_string(::getpid()) + "_" + tag + "_" +
        std::to_string(seq.fetch_add(1))))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::unique_ptr<Server> OpenDurable(const std::string& dir, FsyncPolicy p) {
  DurabilityOptions dur;
  dur.fsync = p;
  return CheckOk(Server::Open(dir, ServerOptions{}, dur), "open durable");
}

/// One-edge commit: the smallest real write, so the WAL/fsync overhead
/// dominates and the policies separate.
void CommitOne(Server* server, int n) {
  CheckOk(server
              ->Apply(WriteBatch().Insert(
                  "edge", {"n" + std::to_string(n % 97),
                           "n" + std::to_string((n + 1) % 97)}))
              .status(),
          "commit");
}

void Report() {
  bench::Banner(
      "Durability: WAL commit cost, checkpoints, and recovery",
      "recovery reproduces the committed state exactly; fsync policy sets "
      "commit throughput; checkpoints bound recovery time");

  // Cross-check first: close a durable server and recover the directory;
  // the fingerprint (relations, arities, rows) must be identical.
  {
    const std::string dir = FreshDir("match");
    std::string live;
    {
      auto server = OpenDurable(dir, FsyncPolicy::kAlways);
      CheckOk(server->Apply(WriteBatch().Facts("edge(a, b). edge(b, c)."))
                  .status(),
              "seed");
      for (int i = 0; i < 16; ++i) CommitOne(server.get(), i);
      CheckOk(server->Checkpoint(), "checkpoint");
      for (int i = 16; i < 32; ++i) CommitOne(server.get(), i);
      live = testing::DatabaseFingerprint(server->database());
    }
    auto recovered = OpenDurable(dir, FsyncPolicy::kAlways);
    if (testing::DatabaseFingerprint(recovered->database()) != live) {
      std::fprintf(stderr, "FATAL: recovered state diverged from live\n");
      std::abort();
    }
    std::printf(
        "  MATCH recovered == live server (checkpoint + 16-record WAL "
        "tail)\n\n");
  }

  // Commit throughput vs fsync policy (one-edge commits).
  std::printf("  commit throughput, one-edge batches:\n");
  std::printf("  %-10s %12s\n", "fsync", "commits/s");
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kGroupCommit,
                             FsyncPolicy::kOff}) {
    const std::string dir = FreshDir("throughput");
    auto server = OpenDurable(dir, policy);
    const int kCommits = 256;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCommits; ++i) CommitOne(server.get(), i);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  %-10s %12.0f\n",
                std::string(durability::FsyncPolicyName(policy)).c_str(),
                kCommits / s);
  }

  // Recovery time vs WAL length, and the same tail after a checkpoint.
  std::printf("\n  recovery time vs WAL length (one-edge records):\n");
  std::printf("  %-12s %14s %14s\n", "records", "recover(ms)", "replayed");
  for (int records : {64, 256, 1024}) {
    const std::string dir = FreshDir("recover");
    {
      auto server = OpenDurable(dir, FsyncPolicy::kOff);
      for (int i = 0; i < records; ++i) CommitOne(server.get(), i);
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto server = OpenDurable(dir, FsyncPolicy::kOff);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("  %-12d %14.2f %14d\n", records, ms, records);
  }
  {
    const std::string dir = FreshDir("recover_ckpt");
    {
      auto server = OpenDurable(dir, FsyncPolicy::kOff);
      for (int i = 0; i < 1024; ++i) CommitOne(server.get(), i);
      CheckOk(server->Checkpoint(), "checkpoint");
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto server = OpenDurable(dir, FsyncPolicy::kOff);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("  %-12s %14.2f %14d   (checkpoint truncated the log)\n",
                "1024+ckpt", ms, 0);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Commit cost per fsync policy. Arg 0/1/2 = always/group/off; the server
// (and its WAL) persists across iterations, so this times the steady
// state: encode + append (+ fsync per policy) + publish.

void BM_DurableCommit(benchmark::State& state) {
  const auto policy = static_cast<FsyncPolicy>(state.range(0));
  const std::string dir = FreshDir("bm_commit");
  auto server = OpenDurable(dir, policy);
  int n = 0;
  for (auto _ : state) {
    CommitOne(server.get(), n++);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(durability::FsyncPolicyName(policy)));
}
BENCHMARK(BM_DurableCommit)->Arg(0)->Arg(1)->Arg(2);

// In-memory baseline for the same one-edge commit: the durability-off
// acceptance bar (BM_DurableCommit/2 must sit within noise of this).
void BM_InMemoryCommit(benchmark::State& state) {
  Server server;
  int n = 0;
  for (auto _ : state) {
    CommitOne(&server, n++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InMemoryCommit);

// ---------------------------------------------------------------------------
// Recovery cost vs WAL length: each iteration replays the same N-record
// log (opening never consumes it — the log stays valid on disk).

void BM_Recovery(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("bm_recover");
  {
    auto server = OpenDurable(dir, FsyncPolicy::kOff);
    for (int i = 0; i < records; ++i) CommitOne(server.get(), i);
  }
  for (auto _ : state) {
    auto server = OpenDurable(dir, FsyncPolicy::kOff);
    benchmark::DoNotOptimize(server->epoch());
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_Recovery)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Checkpoint write cost vs database size (rows serialized + fsync +
// rename; the WAL truncation behind it is a metadata op).

void BM_Checkpoint(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("bm_ckpt");
  auto server = OpenDurable(dir, FsyncPolicy::kOff);
  {
    std::string facts;
    for (int i = 0; i < rows; ++i) {
      facts += "edge(n" + std::to_string(i % 199) + ", n" +
               std::to_string((i * 7) % 199) + ").\n";
    }
    CheckOk(server->Apply(WriteBatch().Facts(facts)).status(), "seed");
  }
  for (auto _ : state) {
    CheckOk(server->Checkpoint(), "checkpoint");
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Checkpoint)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Report();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
