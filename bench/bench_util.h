// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary follows the same pattern: print a report header that
// re-derives the figure's artifact (program text, query results, or an
// equivalence certification — the paper's "evaluation" is qualitative), then
// run google-benchmark timings whose *shape* (who wins, how cost scales)
// is the reproduced claim.

#ifndef GRAPHLOG_BENCH_BENCH_UTIL_H_
#define GRAPHLOG_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "graphlog/api.h"
#include "storage/database.h"

namespace graphlog::bench {

/// \brief Evaluates GraphLog text through the unified Run() API and hands
/// back the stats, mirroring the retired gl::EvaluateGraphLogText wrapper.
inline Result<gl::QueryStats> EvalGraphLogText(std::string text,
                                               storage::Database* db) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      QueryResponse resp, Run(QueryRequest::GraphLog(std::move(text)), db));
  return std::move(resp.stats);
}

/// \brief Aborts the bench with a message when a Status is not OK —
/// benches must fail loudly, not silently time garbage.
inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(Result<T> r, const char* what) {
  CheckOk(r.status(), what);
  return std::move(r).ValueOrDie();
}

/// \brief Prints the standard report banner.
inline void Banner(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("  claim: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace graphlog::bench

#endif  // GRAPHLOG_BENCH_BENCH_UTIL_H_
