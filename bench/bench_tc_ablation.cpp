// TC ablation: the Section 6 claim that GraphLog implementations can
// "benefit from the existing work on transitive closure computation".
//
// Compares the four closure kernels on three graph shapes:
//   * chain  — maximal diameter: semi-naive needs O(n) rounds, squaring
//              O(log n); BFS wins outright.
//   * random — small diameter: round counts converge, constant factors
//              dominate.
//   * tree   — closure size n log n; per-source BFS shines.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "storage/database.h"
#include "tc/transitive_closure.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

enum Shape { kChain = 0, kRandom = 1, kTree = 2 };

storage::Database MakeGraph(Shape shape, int n) {
  storage::Database db;
  switch (shape) {
    case kChain:
      CheckOk(workload::Chain(n, &db), "chain");
      break;
    case kRandom:
      CheckOk(workload::RandomDigraph(n, 3 * n, 42, &db), "random");
      break;
    case kTree:
      // depth so that node count ~ n for a binary tree
      int depth = 1;
      while ((2 << depth) < n) ++depth;
      CheckOk(workload::KaryTree(2, depth, &db), "tree");
      break;
  }
  return db;
}

const char* ShapeName(Shape s) {
  switch (s) {
    case kChain:
      return "chain";
    case kRandom:
      return "random";
    case kTree:
      return "tree";
  }
  return "?";
}

void Report() {
  bench::Banner("TC ablation — naive vs semi-naive vs squaring vs BFS",
                "semi-naive beats naive; squaring needs O(log diameter) "
                "rounds; per-source BFS avoids join machinery entirely");
  std::printf("%-8s %6s | %10s %10s %10s %10s  (fixpoint rounds)\n", "shape",
              "n", "naive", "semi", "squaring", "bfs");
  for (Shape shape : {kChain, kRandom, kTree}) {
    int n = 128;
    storage::Database db = MakeGraph(shape, n);
    const storage::Relation& e = *db.Find("edge");
    tc::TcStats s[4];
    for (int a = 0; a < 4; ++a) {
      CheckOk(tc::TransitiveClosure(e, static_cast<tc::TcAlgorithm>(a),
                                    &s[a])
                  .status(),
              "closure");
    }
    std::printf("%-8s %6zu | %10llu %10llu %10llu %10llu\n",
                ShapeName(shape), e.size(),
                static_cast<unsigned long long>(s[0].rounds),
                static_cast<unsigned long long>(s[1].rounds),
                static_cast<unsigned long long>(s[2].rounds),
                static_cast<unsigned long long>(s[3].rounds));
  }
  std::printf("\n");
}

void BM_Tc(benchmark::State& state) {
  Shape shape = static_cast<Shape>(state.range(0));
  auto algo = static_cast<tc::TcAlgorithm>(state.range(1));
  int n = static_cast<int>(state.range(2));
  storage::Database db = MakeGraph(shape, n);
  const storage::Relation& e = *db.Find("edge");
  size_t closure_size = 0;
  for (auto _ : state) {
    auto tc = CheckOk(tc::TransitiveClosure(e, algo), "closure");
    closure_size = tc.size();
    benchmark::DoNotOptimize(closure_size);
  }
  const char* algo_names[] = {"naive", "semi", "squaring", "bfs"};
  state.SetLabel(std::string(ShapeName(shape)) + "/" +
                 algo_names[state.range(1)] + "/closure=" +
                 std::to_string(closure_size));
}
void TcArgs(benchmark::internal::Benchmark* b) {
  for (int shape : {kChain, kRandom, kTree}) {
    for (int algo = 0; algo < 4; ++algo) {
      for (int n : {64, 256}) {
        b->Args({shape, algo, n});
      }
    }
  }
}
BENCHMARK(BM_Tc)->Apply(TcArgs);

}  // namespace

int main(int argc, char** argv) {
  Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
