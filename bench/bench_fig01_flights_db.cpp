// Figure 1: the flight-schedule database as a graph.
//
// Regenerates the exact Figure 1 database, demonstrates the
// relation <-> graph mapping of Section 2 (Definition 2.1), and times
// graph construction and the relational round-trip as the schedule grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graph/data_graph.h"
#include "storage/database.h"
#include "workload/generators.h"

using namespace graphlog;
using bench::CheckOk;

namespace {

void ReportFigure1() {
  bench::Banner("Figure 1 — graph representation of a flights database",
                "relations and directed labeled multigraphs are two views "
                "of the same data (Definition 2.1)");
  storage::Database db;
  CheckOk(workload::Figure1Flights(&db), "figure 1 load");
  for (const char* rel : {"from", "to", "departure", "arrival", "capital"}) {
    std::printf("%s", db.RelationToString(db.Intern(rel)).c_str());
  }
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  std::printf("graph view: %zu nodes, %zu edges, %zu edge predicates\n",
              g.num_nodes(), g.num_edges(), g.EdgePredicates().size());
  storage::Database back;
  CheckOk(g.ToDatabase(db.symbols(), &back), "round trip");
  std::printf("round trip: %zu tuples -> graph -> %zu tuples %s\n\n",
              db.TotalTuples(), back.TotalTuples(),
              db.TotalTuples() == back.TotalTuples() ? "(MATCH)"
                                                     : "(MISMATCH!)");
}

void BM_BuildGraphFromRelations(benchmark::State& state) {
  workload::FlightsOptions opts;
  opts.num_flights = static_cast<int>(state.range(0));
  opts.num_cities = std::max(4, opts.num_flights / 8);
  storage::Database db;
  CheckOk(workload::Flights(opts, &db), "flights generator");
  for (auto _ : state) {
    graph::DataGraph g = graph::DataGraph::FromDatabase(db);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * db.TotalTuples());
}
BENCHMARK(BM_BuildGraphFromRelations)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GraphToRelations(benchmark::State& state) {
  workload::FlightsOptions opts;
  opts.num_flights = static_cast<int>(state.range(0));
  opts.num_cities = std::max(4, opts.num_flights / 8);
  storage::Database db;
  CheckOk(workload::Flights(opts, &db), "flights generator");
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  for (auto _ : state) {
    storage::Database out;
    CheckOk(g.ToDatabase(db.symbols(), &out), "to database");
    benchmark::DoNotOptimize(out.TotalTuples());
  }
  state.SetItemsProcessed(state.iterations() * db.TotalTuples());
}
BENCHMARK(BM_GraphToRelations)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  ReportFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
