#!/usr/bin/env bash
# Runs the benchmark suite and leaves machine-readable results next to the
# build tree: one BENCH_<name>.json per bench binary, each wrapped in a
# shared schema header so runs are comparable across machines and commits:
#
#   {
#     "schema_version": 1,
#     "bench": "<name>",            # binary name without the bench_ prefix
#     "git_rev": "<sha or unknown>",
#     "threads": <hardware concurrency>,
#     "timestamp": "<UTC ISO-8601>",
#     "benchmark": { ... }          # the raw google-benchmark JSON report
#   }
#
# Compare two output directories with scripts/check_bench_regression.py.
#
# Usage: bench/run_benches.sh [--check BASELINE_DIR] [BUILD_DIR] [OUT_DIR]
#                             [FILTER]
# Defaults: BUILD_DIR = ./build, OUT_DIR = BUILD_DIR; FILTER is a shell
# glob over binary names (e.g. 'bench_parallel*'), default all.
#
# With --check BASELINE_DIR, the fresh OUT_DIR is compared against a
# previous run's reports via scripts/check_bench_regression.py after the
# suite finishes, and the script exits nonzero on a regression.

set -euo pipefail

CHECK_BASELINE=""
if [[ "${1:-}" == "--check" ]]; then
  [[ $# -ge 2 ]] || { echo "error: --check needs BASELINE_DIR" >&2; exit 2; }
  CHECK_BASELINE="$2"
  shift 2
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}}"
FILTER="${3:-bench_*}"

if ! compgen -G "${BUILD_DIR}/bench/bench_*" >/dev/null; then
  echo "error: no bench binaries under ${BUILD_DIR}/bench" >&2
  echo "  (cmake -S . -B ${BUILD_DIR} && cmake --build ${BUILD_DIR})" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

GIT_REV="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD \
           2>/dev/null || echo unknown)"

wrap() {
  # wrap RAW_JSON OUT_JSON NAME — prepend the schema header.
  python3 - "$1" "$2" "$3" "${GIT_REV}" <<'EOF'
import json, os, sys
from datetime import datetime, timezone
raw, out, name, rev = sys.argv[1:5]
with open(raw) as f:
    report = json.load(f)
doc = {
    "schema_version": 1,
    "bench": name,
    "git_rev": rev,
    "threads": os.cpu_count(),
    "timestamp": datetime.now(timezone.utc).isoformat(),
    "benchmark": report,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
}

ran=0
for bin in "${BUILD_DIR}"/bench/${FILTER}; do
  [[ -x "${bin}" ]] || continue
  base="$(basename "${bin}")"
  name="${base#bench_}"
  out="${OUT_DIR}/BENCH_${name}.json"
  raw="${out}.raw"
  echo "== ${base} -> ${out}"
  # The report banner goes to stdout before google-benchmark starts; the
  # JSON goes to its own file so it stays parseable.
  "${bin}" \
    --benchmark_out="${raw}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true
  wrap "${raw}" "${out}" "${name}"
  rm -f "${raw}"
  echo "wrote ${out}"
  ran=$((ran + 1))
done

if [[ "${ran}" -eq 0 ]]; then
  echo "error: no bench binary matched '${FILTER}'" >&2
  exit 1
fi
echo "${ran} benchmark reports in ${OUT_DIR}"

if [[ -n "${CHECK_BASELINE}" ]]; then
  echo "== regression check against ${CHECK_BASELINE}"
  python3 "$(dirname "$0")/../scripts/check_bench_regression.py" \
    "${CHECK_BASELINE}" "${OUT_DIR}"
fi
