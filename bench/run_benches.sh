#!/usr/bin/env bash
# Runs the parallel-evaluation benchmark suite and leaves machine-readable
# results next to the build tree:
#
#   BENCH_parallel_eval.json  thread ablation (1/2/4/8 lanes) for linear and
#                             nonlinear transitive closure, plus the
#                             incremental-vs-rebuild index maintenance ablation
#   BENCH_parallel_tc.json    per-source-parallel TC kernel ablation
#   BENCH_observability.json  tracing-overhead ablation (tracing off vs on,
#                             plus explain-only planning cost)
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
# Defaults: BUILD_DIR = ./build, OUT_DIR = BUILD_DIR.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}}"

if [[ ! -x "${BUILD_DIR}/bench/bench_parallel_eval" ]]; then
  echo "error: ${BUILD_DIR}/bench/bench_parallel_eval not built" >&2
  echo "  (cmake -S . -B ${BUILD_DIR} && cmake --build ${BUILD_DIR})" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

run() {
  local bin="$1" out="$2"
  echo "== ${bin} -> ${out}"
  # The report banner goes to stdout before google-benchmark starts; the
  # JSON goes to its own file so it stays parseable.
  "${BUILD_DIR}/bench/${bin}" \
    --benchmark_out="${OUT_DIR}/${out}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true
}

run bench_parallel_eval BENCH_parallel_eval.json
run bench_parallel_tc BENCH_parallel_tc.json
run bench_observability BENCH_observability.json

echo "wrote ${OUT_DIR}/BENCH_parallel_eval.json"
echo "wrote ${OUT_DIR}/BENCH_parallel_tc.json"
echo "wrote ${OUT_DIR}/BENCH_observability.json"
